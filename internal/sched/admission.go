// Adaptive, SLO-aware admission control (the first closed feedback
// loop from telemetry back into scheduling): a sliding-window p99 of
// grant wait is compared against a configured latency objective and
// the scheduler moves between three states —
//
//   - Open: admit everything, aggressive backfill (the plain
//     Algorithm-2 behaviour).
//   - Throttled: shed every second submission per client
//     (deterministic rate-halving with a short retry hint — per-client
//     so one chatty client cannot shift the parity and starve others),
//     defer non-resident clients (no backfill for clients that have
//     never been granted) and backfill conservatively (small
//     forward-class requests only), protecting the queue head.
//   - Shedding: reject new Submits with ErrOverloaded and a
//     retry-after hint. Rejection is deadlock-safe because a client
//     can never Submit while holding memory (ErrOutstanding).
//
// Escalation (Open→Throttled→Shedding) is immediate; de-escalation
// requires the pressure signal to stay below the re-open threshold for
// a dwell period, giving the loop hysteresis instead of flapping.
package sched

import (
	"errors"
	"fmt"
	"time"

	"menos/internal/obs"
)

// ErrOverloaded is the sentinel matched by errors.Is for rejections
// issued while the admission controller is shedding load. The concrete
// error is always an *OverloadError carrying the retry-after hint.
var ErrOverloaded = errors.New("sched: overloaded, retry later")

// OverloadError reports a shed submission: the state that caused it,
// the pressure measurement that tripped it, and how long the caller
// should wait before retrying.
type OverloadError struct {
	State      AdmissionState
	P99        time.Duration // effective p99 grant wait at rejection time
	SLO        time.Duration // the configured target
	RetryAfter time.Duration // backoff hint
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("sched: overloaded (state %s, p99 wait %v, slo %v): retry after %v",
		e.State, e.P99.Round(time.Millisecond), e.SLO, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) work.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// AdmissionState is the controller's position in the Open → Throttled
// → Shedding ladder.
type AdmissionState int

// Admission states, ordered by pressure.
const (
	StateOpen AdmissionState = iota
	StateThrottled
	StateShedding
)

// String returns the state name.
func (s AdmissionState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateThrottled:
		return "throttled"
	case StateShedding:
		return "shedding"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// SLO configures the admission controller. The zero value disables
// admission control entirely (Enabled() == false), in which case the
// scheduler's behaviour is bit-identical to the plain Algorithm-2
// policy.
type SLO struct {
	// TargetP99 is the grant-wait objective: the controller tries to
	// keep the sliding-window p99 of submit→grant latency at or below
	// this. Zero disables admission control.
	TargetP99 time.Duration
	// Window is the sliding measurement window (default 8×TargetP99).
	Window time.Duration
	// ThrottleFactor enters Throttled at p99 ≥ factor×TargetP99
	// (default 0.7).
	ThrottleFactor float64
	// ShedFactor enters Shedding at p99 ≥ factor×TargetP99
	// (default 1.0).
	ShedFactor float64
	// ReopenFactor de-escalates one state when p99 < factor×TargetP99
	// for a full Dwell (default 0.5).
	ReopenFactor float64
	// MinSamples gates escalation on window population, so one slow
	// grant after an idle period cannot throttle the scheduler. The
	// queue-head age bypasses this: a head older than the threshold is
	// overload evidence regardless of sample count (default 8).
	MinSamples int
	// Dwell is the minimum time between de-escalations (default
	// Window/4). Escalations are immediate.
	Dwell time.Duration
	// RetryAfter is the backoff hint carried by OverloadError
	// (default TargetP99).
	RetryAfter time.Duration
}

// Enabled reports whether this SLO activates admission control.
func (s SLO) Enabled() bool { return s.TargetP99 > 0 }

// withDefaults fills unset tuning knobs.
func (s SLO) withDefaults() SLO {
	if s.Window <= 0 {
		s.Window = 8 * s.TargetP99
	}
	if s.ThrottleFactor <= 0 {
		s.ThrottleFactor = 0.7
	}
	if s.ShedFactor <= 0 {
		s.ShedFactor = 1.0
	}
	if s.ReopenFactor <= 0 {
		s.ReopenFactor = 0.5
	}
	if s.MinSamples <= 0 {
		s.MinSamples = 8
	}
	if s.Dwell <= 0 {
		s.Dwell = s.Window / 4
	}
	if s.RetryAfter <= 0 {
		s.RetryAfter = s.TargetP99
	}
	return s
}

// admissionWindowSlices is the ring resolution: the window is covered
// by this many bucket-array slices, expired one at a time as the clock
// advances (so the p99 "slides" with slice granularity).
const admissionWindowSlices = 8

// admSlice is one time slice of grant-wait observations, bucketed over
// the same bounds as the obs wait histogram.
type admSlice struct {
	counts []int64 // len(bounds)+1, last is +Inf
	total  int64
}

func (s *admSlice) reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.total = 0
}

// AdmissionController implements the state machine. It is owned by a
// Scheduler and only ever touched under the scheduler's mutex, so it
// needs no locking of its own; the metric handles it publishes through
// are the usual lock-free obs types.
type AdmissionController struct {
	slo   SLO
	clock obs.Clock

	bounds   []float64 // histogram bounds, seconds (obs.DurationBuckets)
	slices   [admissionWindowSlices]admSlice
	sliceDur time.Duration
	curIdx   int64 // absolute slice index of slices[curIdx%N]

	state       AdmissionState
	since       time.Duration // when the current state was entered
	calmSince   time.Duration // start of the current below-reopen streak
	calm        bool
	transitions int64
	shed        int64
	deferred    int64
	// throttleTicks is the per-client submission parity while
	// Throttled: each client is shed on its own every-second
	// submission, so rate-halving is fair regardless of how the
	// clients' submissions interleave.
	throttleTicks map[string]int64
	lastP99       time.Duration

	// hook observes state transitions (Scheduler.SetAdmissionHook).
	hook func(from, to AdmissionState)

	// Telemetry handles (nil-safe; wired by instrument).
	mState       *obs.Gauge
	mP99Micros   *obs.Gauge
	mTransitions *obs.Counter
	mShed        *obs.Counter
	mDeferred    *obs.Counter
}

// newAdmissionController builds a controller for an enabled SLO.
func newAdmissionController(slo SLO, clock obs.Clock) *AdmissionController {
	a := &AdmissionController{
		slo:           slo.withDefaults(),
		clock:         clock,
		bounds:        obs.DurationBuckets(),
		throttleTicks: make(map[string]int64),
	}
	a.sliceDur = a.slo.Window / admissionWindowSlices
	if a.sliceDur <= 0 {
		a.sliceDur = time.Millisecond
	}
	for i := range a.slices {
		a.slices[i].counts = make([]int64, len(a.bounds)+1)
	}
	now := clock.Now()
	a.curIdx = int64(now / a.sliceDur)
	a.since = now
	return a
}

// instrument wires the controller's metrics into reg (idempotent;
// nil-safe on a nil registry).
func (a *AdmissionController) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	a.mState = reg.Gauge(obs.MetricSchedAdmissionState, "admission state (0 open, 1 throttled, 2 shedding)")
	a.mP99Micros = reg.Gauge(obs.MetricSchedAdmissionP99Micros, "sliding-window p99 grant wait, microseconds")
	a.mTransitions = reg.Counter(obs.MetricSchedAdmissionTransitions, "admission state transitions")
	a.mShed = reg.Counter(obs.MetricSchedAdmissionShed, "submissions shed (each client's every 2nd while throttled, all while shedding)")
	a.mDeferred = reg.Counter(obs.MetricSchedAdmissionDeferred, "backfill grants suppressed while throttled/shedding")
	a.mState.Set(int64(a.state))
	// Advertise the configured target so scrapers (the fleet telemetry
	// plane's burn-rate rule) compare each server's p99 against the
	// server's own SLO rather than a control-plane-side default.
	reg.Gauge(obs.MetricSchedAdmissionSLOTarget, "configured grant-wait p99 target, microseconds").
		Set(a.slo.TargetP99.Microseconds())
}

// advance rotates the slice ring so slices[curIdx] covers now,
// clearing everything that fell out of the window.
func (a *AdmissionController) advance(now time.Duration) {
	idx := int64(now / a.sliceDur)
	if idx <= a.curIdx {
		return
	}
	if idx-a.curIdx >= admissionWindowSlices {
		for i := range a.slices {
			a.slices[i].reset()
		}
	} else {
		for i := a.curIdx + 1; i <= idx; i++ {
			a.slices[i%admissionWindowSlices].reset()
		}
	}
	a.curIdx = idx
}

// observe records one grant wait into the current slice.
func (a *AdmissionController) observe(now, wait time.Duration) {
	a.advance(now)
	sec := wait.Seconds()
	i := 0
	for i < len(a.bounds) && sec > a.bounds[i] {
		i++
	}
	sl := &a.slices[a.curIdx%admissionWindowSlices]
	sl.counts[i]++
	sl.total++
}

// windowSnapshot merges the live slices into an obs histogram snapshot.
func (a *AdmissionController) windowSnapshot() obs.HistSnapshot {
	s := obs.HistSnapshot{Bounds: a.bounds, Counts: make([]int64, len(a.bounds)+1)}
	for i := range a.slices {
		for j, c := range a.slices[i].counts {
			s.Counts[j] += c
		}
		s.Count += a.slices[i].total
	}
	return s
}

// effectiveP99 is the pressure signal: the window p99 of completed
// waits, raised to the age of the oldest still-waiting request. The
// second term matters under severe overload, when nothing is being
// granted and the wait histogram alone would go quiet.
func (a *AdmissionController) effectiveP99(snap obs.HistSnapshot, headAge time.Duration) time.Duration {
	var p99 time.Duration
	if snap.Count > 0 {
		p99 = time.Duration(snap.Quantile(0.99) * float64(time.Second))
	}
	if headAge > p99 {
		p99 = headAge
	}
	return p99
}

// evaluate runs one step of the state machine. headAge is the age of
// the oldest waiting request (0 for an empty queue). Caller holds the
// scheduler mutex.
func (a *AdmissionController) evaluate(now, headAge time.Duration) {
	a.advance(now)
	snap := a.windowSnapshot()
	p99 := a.effectiveP99(snap, headAge)
	a.lastP99 = p99
	a.mP99Micros.Set(p99.Microseconds())

	throttleAt := time.Duration(a.slo.ThrottleFactor * float64(a.slo.TargetP99))
	shedAt := time.Duration(a.slo.ShedFactor * float64(a.slo.TargetP99))
	reopenAt := time.Duration(a.slo.ReopenFactor * float64(a.slo.TargetP99))

	// Escalation needs either a populated window or direct queue-head
	// evidence; either way it takes effect immediately.
	evidence := snap.Count >= int64(a.slo.MinSamples) || headAge >= throttleAt
	if evidence {
		if p99 >= shedAt && a.state != StateShedding {
			a.transition(StateShedding, now)
			return
		}
		if p99 >= throttleAt && a.state == StateOpen {
			a.transition(StateThrottled, now)
			return
		}
	}

	// De-escalation: one rung at a time, only after the signal has
	// stayed below the re-open threshold for a full dwell.
	if a.state == StateOpen {
		a.calm = false
		return
	}
	if p99 >= reopenAt {
		a.calm = false
		return
	}
	if !a.calm {
		a.calm = true
		a.calmSince = now
		return
	}
	if now-a.calmSince >= a.slo.Dwell {
		a.transition(a.state-1, now)
	}
}

// transition moves to state, stamping counters and gauges. The hook,
// if set, fires under the scheduler mutex — it must hand real work off
// (see SetAdmissionHook).
func (a *AdmissionController) transition(state AdmissionState, now time.Duration) {
	from := a.state
	a.state = state
	a.since = now
	a.calm = false
	a.transitions++
	a.mTransitions.Inc()
	a.mState.Set(int64(state))
	if a.hook != nil && from != state {
		a.hook(from, state)
	}
}

// admit decides one submission from clientID. Returns nil (admit) or
// an *OverloadError (reject). Caller holds the scheduler mutex and has
// already called evaluate for this instant.
//
// Open admits everything. Throttled sheds each client's every second
// submission — deterministic rate-halving, with half the usual retry
// hint, that relieves queue pressure gradually instead of the
// admit-everything / shed-everything oscillation a two-state
// controller produces (shed clients back off together and return as a
// thundering herd). The parity is tracked per client: a global tick
// would let one chatty client absorb all the odd slots and starve a
// client whose submissions happen to land on the even ones. Shedding
// rejects everything.
func (a *AdmissionController) admit(clientID string) error {
	retry := a.slo.RetryAfter
	switch a.state {
	case StateShedding:
	case StateThrottled:
		a.throttleTicks[clientID]++
		if a.throttleTicks[clientID]%2 != 0 {
			return nil
		}
		retry /= 2
	default:
		return nil
	}
	a.shed++
	a.mShed.Inc()
	return &OverloadError{
		State:      a.state,
		P99:        a.lastP99,
		SLO:        a.slo.TargetP99,
		RetryAfter: retry,
	}
}

// backfillAllowed reports whether a backfill grant for req is permitted
// in the current state. Open allows everything (aggressive backfill);
// Throttled and Shedding only let small forward-class requests from
// resident clients jump the queue, so a blocked head is not delayed by
// speculative large grants while the system is under pressure.
func (a *AdmissionController) backfillAllowed(req *request, resident bool) bool {
	if a.state == StateOpen {
		return true
	}
	if req.kind == KindForward && resident {
		return true
	}
	a.deferred++
	a.mDeferred.Inc()
	return false
}

// AdmissionStats snapshots controller activity.
type AdmissionStats struct {
	State       AdmissionState
	P99         time.Duration // last evaluated pressure signal
	Transitions int64
	Shed        int64
	Deferred    int64
}
