package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"menos/internal/obs"
)

// testClock is a settable virtual clock for driving the admission
// controller deterministically.
type testClock struct{ now atomic.Int64 }

func (c *testClock) Now() time.Duration      { return time.Duration(c.now.Load()) }
func (c *testClock) set(d time.Duration)     { c.now.Store(int64(d)) }
func (c *testClock) advance(d time.Duration) { c.now.Add(int64(d)) }
func (c *testClock) clock() obs.Clock        { return obs.ClockFunc(func() time.Duration { return c.Now() }) }

// TestOversizeSubmitFailsFast is the regression test for the
// reserved-floor fix: a request larger than the total budget — or
// larger than what remains above long-lived reservations — must fail
// with ErrNeverFits at Submit instead of queueing forever.
func TestOversizeSubmitFailsFast(t *testing.T) {
	t.Run("exceeds total", func(t *testing.T) {
		s := New(100, PolicyFCFSBackfill)
		err := s.Submit("a", KindBackward, 101, func() {})
		if !errors.Is(err, ErrNeverFits) {
			t.Fatalf("err = %v, want ErrNeverFits", err)
		}
		if s.QueueDepth() != 0 {
			t.Fatalf("oversize request was queued (depth %d)", s.QueueDepth())
		}
	})
	t.Run("exceeds reserved floor", func(t *testing.T) {
		s := New(100, PolicyFCFSBackfill)
		if err := s.Reserve("kv", 60); err != nil {
			t.Fatal(err)
		}
		if s.Schedulable() != 40 {
			t.Fatalf("schedulable = %d, want 40", s.Schedulable())
		}
		// 41 bytes fit in the total but can never fit above the
		// reservation: before the fix this queued forever.
		err := s.Submit("a", KindBackward, 41, func() {})
		if !errors.Is(err, ErrNeverFits) {
			t.Fatalf("err = %v, want ErrNeverFits", err)
		}
		if s.QueueDepth() != 0 {
			t.Fatalf("never-fits request was queued (depth %d)", s.QueueDepth())
		}
		// Releasing the reservation restores the full budget.
		s.Complete("kv")
		granted := false
		if err := s.Submit("a", KindBackward, 41, func() { granted = true }); err != nil {
			t.Fatal(err)
		}
		if !granted {
			t.Fatal("request not granted after reservation release")
		}
	})
}

// rep builds n copies of the same wait for table steps.
func rep(n int, d time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// TestAdmissionHysteresis drives the full Open → Throttled → Shedding
// → Throttled → Open cycle on a virtual clock: escalation is
// immediate, de-escalation takes one rung per calm dwell.
//
// SLO: target 1s → window 8s, throttle at 0.7s, shed at 1s, reopen
// below 0.5s, dwell 2s, MinSamples 8. Waits land in the obs duration
// buckets, so a batch of 800ms waits reads back as a p99 of ~0.99s
// (inside the (0.5s, 1s] bucket): above the throttle threshold, below
// the shed threshold.
func TestAdmissionHysteresis(t *testing.T) {
	clk := &testClock{}
	a := newAdmissionController(SLO{TargetP99: time.Second}, clk.clock())

	steps := []struct {
		name    string
		at      time.Duration
		waits   []time.Duration
		headAge time.Duration
		want    AdmissionState
	}{
		{"fast waits keep it open", 0, rep(8, 100*time.Millisecond), 0, StateOpen},
		{"waits near target throttle", 1 * time.Second, rep(8, 800*time.Millisecond), 0, StateThrottled},
		{"stalled head sheds", 2 * time.Second, nil, 3 * time.Second, StateShedding},
		{"sustained pressure holds", 3 * time.Second, nil, 3 * time.Second, StateShedding},
		{"calm starts the dwell", 20 * time.Second, nil, 0, StateShedding},
		{"dwell served: one rung down", 23 * time.Second, nil, 0, StateThrottled},
		{"calm again after transition", 26 * time.Second, nil, 0, StateThrottled},
		{"second dwell: fully open", 29 * time.Second, nil, 0, StateOpen},
	}
	for _, step := range steps {
		clk.set(step.at)
		for _, w := range step.waits {
			a.observe(step.at, w)
		}
		a.evaluate(step.at, step.headAge)
		if a.state != step.want {
			t.Fatalf("%s: state = %v, want %v (p99 %v)", step.name, a.state, step.want, a.lastP99)
		}
	}
	if a.transitions != 4 {
		t.Fatalf("transitions = %d, want 4", a.transitions)
	}
}

// TestAdmitPerState checks the per-state admit decision: Open admits
// all, Throttled sheds each client's every second submission with a
// halved hint, Shedding rejects everything with the full hint.
func TestAdmitPerState(t *testing.T) {
	clk := &testClock{}
	a := newAdmissionController(SLO{TargetP99: time.Second}, clk.clock())

	if err := a.admit("c"); err != nil {
		t.Fatalf("open: %v", err)
	}

	a.transition(StateThrottled, 0)
	admitted, shed := 0, 0
	for i := 0; i < 10; i++ {
		if err := a.admit("c"); err != nil {
			var ov *OverloadError
			if !errors.As(err, &ov) || !errors.Is(err, ErrOverloaded) {
				t.Fatalf("throttled: wrong error type: %v", err)
			}
			if ov.RetryAfter != a.slo.RetryAfter/2 {
				t.Fatalf("throttled retry hint = %v, want %v", ov.RetryAfter, a.slo.RetryAfter/2)
			}
			shed++
		} else {
			admitted++
		}
	}
	if admitted != 5 || shed != 5 {
		t.Fatalf("throttled admitted %d / shed %d, want 5/5", admitted, shed)
	}

	a.transition(StateShedding, 0)
	for i := 0; i < 3; i++ {
		err := a.admit("c")
		var ov *OverloadError
		if !errors.As(err, &ov) {
			t.Fatalf("shedding: admit returned %v", err)
		}
		if ov.RetryAfter != a.slo.RetryAfter {
			t.Fatalf("shedding retry hint = %v, want %v", ov.RetryAfter, a.slo.RetryAfter)
		}
	}
}

// TestThrottledShedIsPerClientFair is the regression test for the
// client-blind parity shed: with a global tick and a strict A,B,A,B…
// interleave, B's submissions always landed on the even (shed) slots —
// B was starved outright while A was never shed. The per-client parity
// must shed both clients at the same rate regardless of interleaving.
func TestThrottledShedIsPerClientFair(t *testing.T) {
	clk := &testClock{}
	a := newAdmissionController(SLO{TargetP99: time.Second}, clk.clock())
	a.transition(StateThrottled, 0)

	shedBy := map[string]int{}
	admittedBy := map[string]int{}
	for i := 0; i < 20; i++ { // strict alternation: a,b,a,b,…
		id := "a"
		if i%2 == 1 {
			id = "b"
		}
		if err := a.admit(id); err != nil {
			shedBy[id]++
		} else {
			admittedBy[id]++
		}
	}
	for _, id := range []string{"a", "b"} {
		if admittedBy[id] != 5 || shedBy[id] != 5 {
			t.Fatalf("client %s: admitted %d / shed %d, want 5/5 (per-client rate-halving)",
				id, admittedBy[id], shedBy[id])
		}
	}
}

// TestSchedulerShedsUnderStall drives shedding through the public API:
// a stalled queue head ages past the shed threshold, so the next
// Submit is rejected with a typed, retryable error and is not queued.
func TestSchedulerShedsUnderStall(t *testing.T) {
	clk := &testClock{}
	s := New(100, PolicyFCFSBackfill)
	if err := s.EnableAdmission(SLO{TargetP99: time.Second}, clk.clock()); err != nil {
		t.Fatal(err)
	}
	var c collector
	mustSubmit(t, s, "a", KindBackward, 100, c.grant("a")) // holds everything
	mustSubmit(t, s, "b", KindBackward, 100, c.grant("b")) // queues behind a
	clk.advance(5 * time.Second)                           // head far past the 1s target

	err := s.Submit("c", KindBackward, 10, c.grant("c"))
	var ov *OverloadError
	if !errors.As(err, &ov) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("retry hint = %v, want > 0", ov.RetryAfter)
	}
	if s.AdmissionState() != StateShedding {
		t.Fatalf("state = %v, want shedding", s.AdmissionState())
	}
	if s.QueueDepth() != 1 {
		t.Fatalf("shed request was queued (depth %d)", s.QueueDepth())
	}
	if st := s.AdmissionStats(); st.Shed != 1 {
		t.Fatalf("shed count = %d, want 1", st.Shed)
	}

	// Draining the queue and letting the window go calm reopens the
	// scheduler; the once-shed client is admitted on retry.
	s.Complete("a")
	s.Complete("b")
	clk.advance(time.Minute)
	for s.AdmissionState() != StateOpen {
		s.Complete("drain-tick") // no-op; schedule() re-evaluates
		clk.advance(5 * time.Second)
	}
	if err := s.Submit("c", KindBackward, 10, c.grant("c")); err != nil {
		t.Fatalf("retry after reopen: %v", err)
	}
}

// TestAdmissionDisabledIsInert: without EnableAdmission the scheduler
// must behave exactly as before — this pins the admission-off fast
// path used by the byte-identical-experiments guarantee.
func TestAdmissionDisabledIsInert(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	if s.AdmissionState() != StateOpen {
		t.Fatalf("state = %v, want open", s.AdmissionState())
	}
	if st := s.AdmissionStats(); st != (AdmissionStats{}) {
		t.Fatalf("stats = %+v, want zero", st)
	}
	if err := s.EnableAdmission(SLO{}, nil); err != nil {
		t.Fatalf("disabled SLO must be a no-op, got %v", err)
	}
	if err := s.EnableAdmission(SLO{TargetP99: time.Second}, nil); err == nil {
		t.Fatal("enabled SLO with nil clock must error")
	}
}

// TestConcurrentSubmitCompleteUnderAdmission hammers Submit/Complete
// from many goroutines while the virtual clock races forward, flipping
// the controller through its states. Run with -race; the invariant is
// no data race, no leaked memory, and every submission either granted
// or typed-rejected.
func TestConcurrentSubmitCompleteUnderAdmission(t *testing.T) {
	clk := &testClock{}
	s := New(1000, PolicyFCFSBackfill)
	if err := s.EnableAdmission(SLO{TargetP99: time.Millisecond, Window: 8 * time.Millisecond}, clk.clock()); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var ticker sync.WaitGroup
	ticker.Add(1)
	go func() {
		defer ticker.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clk.advance(100 * time.Microsecond)
			}
		}
	}()

	var granted, shed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := string(rune('a'+base)) + string(rune('0'+i%10))
				done := make(chan struct{})
				err := s.Submit(id, KindBackward, 200, func() { close(done) })
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					shed.Add(1)
					continue
				}
				<-done
				granted.Add(1)
				s.Complete(id)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	ticker.Wait()

	if s.Available() != 1000 {
		t.Fatalf("leaked memory: avail = %d", s.Available())
	}
	if granted.Load() == 0 {
		t.Fatal("nothing was granted")
	}
	if got := s.AdmissionStats().Shed; got != shed.Load() {
		t.Fatalf("shed counter = %d, callers saw %d", got, shed.Load())
	}
}
