// Batch-aware grants: a batch former (internal/batch for the TCP
// server, splitsim's virtual-time batcher for the simulator) coalesces
// several clients' compatible forward/backward requests and submits
// them as ONE aggregate scheduling request, so the whole batch is
// granted — and its kernel launched — atomically. The scheduler stays
// the single source of per-tenant accounting truth: every member is
// billed its own byte share and grant wait through the ledger, and the
// unlabeled wait histogram sees one observation per member so the
// labeled families still sum back to the aggregate (the conservation
// contract from docs/OBSERVABILITY.md).
package sched

import (
	"fmt"
	"time"
)

// BatchPolicy configures cross-client batch formation
// (docs/BATCHING.md). The zero value disables batching entirely.
type BatchPolicy struct {
	// MaxSize is the most member requests one batch may carry. 1 is
	// the degenerate "serial" policy — batches always hold a single
	// client — which is the baseline the multilora sweep compares
	// against. 0 disables batching.
	MaxSize int
	// MaxHold bounds how long the first member of a partial batch
	// waits for company before the batch dispatches anyway. Zero
	// means DefaultMaxHold.
	MaxHold time.Duration
}

// DefaultMaxHold is the hold-time knob's default: long enough for
// lockstep clients to coalesce, short enough to be invisible next to a
// training step.
const DefaultMaxHold = 2 * time.Millisecond

// Enabled reports whether this policy activates batch formation.
func (p BatchPolicy) Enabled() bool { return p.MaxSize > 0 }

// WithDefaults fills unset knobs.
func (p BatchPolicy) WithDefaults() BatchPolicy {
	if p.MaxHold <= 0 {
		p.MaxHold = DefaultMaxHold
	}
	return p
}

// Validate rejects nonsensical policies.
func (p BatchPolicy) Validate() error {
	if p.MaxSize < 0 {
		return fmt.Errorf("sched: batch MaxSize %d < 0", p.MaxSize)
	}
	if p.MaxHold < 0 {
		return fmt.Errorf("sched: batch MaxHold %v < 0", p.MaxHold)
	}
	return nil
}

// BatchMember is one client's share of an aggregate batch request.
type BatchMember struct {
	ClientID string
	Bytes    int64
}

// SubmitBatch registers one aggregate request for Σ member bytes under
// batchID; grant is invoked (possibly synchronously, under no lock)
// when the whole batch is scheduled. Each member is billed its own
// Bytes and its own grant wait in the ledger, and each member counts
// as one observation in the unlabeled wait histogram, so per-client
// series still sum to the aggregate. Members must not hold transient
// allocations or queued requests of their own ("persist:"-prefixed
// reservations are separate identities and fine). Admission control
// treats the batch as one submission; a shed is billed to every
// member.
func (s *Scheduler) SubmitBatch(batchID string, kind RequestKind, members []BatchMember, grant func()) error {
	if len(members) == 0 {
		return fmt.Errorf("sched: batch %q has no members", batchID)
	}
	var total int64
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if _, dup := seen[m.ClientID]; dup {
			return fmt.Errorf("%w: %q appears twice in batch %q", ErrOutstanding, m.ClientID, batchID)
		}
		seen[m.ClientID] = struct{}{}
		total += m.Bytes
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejectedInc()
		return ErrClosed
	}
	if total > s.total-s.reserved {
		s.mu.Unlock()
		s.rejectedInc()
		return fmt.Errorf("%w: batch needs %d, schedulable %d (total %d, %d reserved) (batch %q, %d members)",
			ErrNeverFits, total, s.total-s.reserved, s.total, s.reserved, batchID, len(members))
	}
	if err := s.outstandingLocked(batchID); err != nil {
		s.mu.Unlock()
		s.rejectedInc()
		return err
	}
	for _, m := range members {
		if err := s.outstandingLocked(m.ClientID); err != nil {
			s.mu.Unlock()
			s.rejectedInc()
			return fmt.Errorf("batch %q member: %w", batchID, err)
		}
	}
	if s.adm != nil {
		now, _ := s.clockNow()
		s.adm.evaluate(now, s.headAgeLocked(now))
		if err := s.adm.admit(batchID); err != nil {
			for _, m := range members {
				s.ledger.Shed(m.ClientID)
			}
			s.mu.Unlock()
			s.rejectedInc()
			return err
		}
	}
	req := &request{clientID: batchID, kind: kind, bytes: total, grant: grant, members: members}
	if now, ok := s.clockNow(); ok {
		req.at = now
	}
	if s.m != nil {
		s.m.submitted.Inc()
	}
	s.waiting = append(s.waiting, req)
	s.stats.Submitted++
	if len(s.waiting) > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = len(s.waiting)
	}
	s.observeQueueDepth()
	grants := s.schedule()
	s.mu.Unlock()
	for _, g := range grants {
		g()
	}
	return nil
}

// outstandingLocked reports ErrOutstanding when id holds an allocation,
// is queued on its own, or is a member of a queued batch. Caller holds
// s.mu.
func (s *Scheduler) outstandingLocked(id string) error {
	if _, ok := s.alloc[id]; ok {
		return fmt.Errorf("%w: %q holds an allocation", ErrOutstanding, id)
	}
	for _, r := range s.waiting {
		if r.clientID == id {
			return fmt.Errorf("%w: %q is queued", ErrOutstanding, id)
		}
		for _, m := range r.members {
			if m.ClientID == id {
				return fmt.Errorf("%w: %q is queued in batch %q", ErrOutstanding, id, r.clientID)
			}
		}
	}
	return nil
}
