package sched

import (
	"errors"
	"math"
	"testing"
	"time"

	"menos/internal/obs"
)

// TestSubmitBatchGrantsAndBills: an aggregate batch request is granted
// atomically, every member is billed its own byte share and grant
// wait, and the unlabeled wait histogram sees one observation per
// member so Σ{client=*} still reproduces it.
func TestSubmitBatchGrantsAndBills(t *testing.T) {
	reg := obs.NewRegistry()
	clk := &fakeClock{}
	s := New(100, PolicyFCFSBackfill)
	s.Instrument(reg, clk)
	led := obs.NewLedger(obs.LedgerConfig{Clock: clk})
	led.Instrument(reg)
	s.SetLedger(led)

	var c collector
	mustSubmit(t, s, "hog", KindBackward, 90, c.grant("hog"))
	members := []BatchMember{{"a", 20}, {"b", 30}, {"c", 10}}
	if err := s.SubmitBatch("batch-1", KindBackward, members, c.grant("batch-1")); err != nil {
		t.Fatal(err)
	}
	if got := c.got(); len(got) != 1 {
		t.Fatalf("batch granted before memory freed: %v", got)
	}

	clk.now = 4 * time.Second
	s.Complete("hog")
	if got := c.got(); len(got) != 2 || got[1] != "batch-1" {
		t.Fatalf("order = %v", got)
	}
	if s.Allocated("batch-1") != 60 {
		t.Fatalf("batch allocation = %d, want 60", s.Allocated("batch-1"))
	}
	for _, m := range members {
		u, ok := led.Usage(m.ClientID)
		if !ok {
			t.Fatalf("no ledger account for member %q", m.ClientID)
		}
		if u.TransientBytes != m.Bytes {
			t.Errorf("%s transient bytes = %d, want %d", m.ClientID, u.TransientBytes, m.Bytes)
		}
		if math.Abs(u.GrantWaitSeconds-4) > 1e-12 {
			t.Errorf("%s grant wait = %v, want 4s", m.ClientID, u.GrantWaitSeconds)
		}
	}

	// One unlabeled wait observation per member plus one for hog, and
	// the labeled family sums back to the aggregate (conservation).
	agg := reg.Histogram(obs.MetricSchedWaitSeconds, nil).Snapshot()
	if agg.Count != 4 {
		t.Fatalf("unlabeled wait count = %d, want 4", agg.Count)
	}
	hv := reg.HistogramVec(obs.MetricSchedWaitSeconds, "client", obs.DurationBuckets())
	var count int64
	var sum float64
	for _, l := range hv.Labels() {
		h, ok := hv.Get(l)
		if !ok {
			t.Fatalf("label %q listed but not gettable", l)
		}
		snap := h.Snapshot()
		count += snap.Count
		sum += snap.Sum
	}
	if count != agg.Count {
		t.Errorf("labeled wait count %d != unlabeled %d", count, agg.Count)
	}
	if math.Abs(sum-agg.Sum) > 1e-9*math.Max(1, math.Abs(agg.Sum)) {
		t.Errorf("labeled wait sum %.12f != unlabeled %.12f", sum, agg.Sum)
	}

	// Completing the batch releases every member's share.
	if reclaimed := s.Complete("batch-1"); reclaimed != 60 {
		t.Fatalf("reclaimed = %d, want 60", reclaimed)
	}
	for _, m := range members {
		if u, _ := led.Usage(m.ClientID); u.TransientBytes != 0 {
			t.Errorf("%s transient bytes after complete = %d", m.ClientID, u.TransientBytes)
		}
	}
	if s.Available() != 100 {
		t.Fatalf("available = %d, want 100", s.Available())
	}
}

// TestSubmitBatchRejections covers the batch-specific reject paths.
func TestSubmitBatchRejections(t *testing.T) {
	s := New(100, PolicyFCFS)
	var c collector

	if err := s.SubmitBatch("b0", KindForward, nil, c.grant("b0")); err == nil {
		t.Error("empty batch accepted")
	}
	err := s.SubmitBatch("b1", KindForward, []BatchMember{{"a", 60}, {"b", 60}}, c.grant("b1"))
	if !errors.Is(err, ErrNeverFits) {
		t.Errorf("oversized batch: err = %v, want ErrNeverFits", err)
	}
	err = s.SubmitBatch("b2", KindForward, []BatchMember{{"x", 5}, {"x", 5}}, c.grant("b2"))
	if !errors.Is(err, ErrOutstanding) {
		t.Errorf("duplicate member: err = %v, want ErrOutstanding", err)
	}

	mustSubmit(t, s, "a", KindForward, 10, c.grant("a"))
	err = s.SubmitBatch("b3", KindForward, []BatchMember{{"a", 5}}, c.grant("b3"))
	if !errors.Is(err, ErrOutstanding) {
		t.Errorf("member with live allocation: err = %v, want ErrOutstanding", err)
	}
	s.Complete("a")

	// Fill memory, queue a batch carrying x, then try to queue x again
	// in a second batch: the member-in-queued-batch check must fire.
	mustSubmit(t, s, "hog", KindBackward, 100, c.grant("hog"))
	if err := s.SubmitBatch("b4", KindForward, []BatchMember{{"x", 20}}, c.grant("b4")); err != nil {
		t.Fatal(err)
	}
	err = s.SubmitBatch("b5", KindForward, []BatchMember{{"x", 5}}, c.grant("b5"))
	if !errors.Is(err, ErrOutstanding) {
		t.Errorf("member queued in another batch: err = %v, want ErrOutstanding", err)
	}
}

// TestBatchPolicyValidate pins the knob defaults.
func TestBatchPolicyValidate(t *testing.T) {
	if (BatchPolicy{}).Enabled() {
		t.Error("zero policy must be disabled")
	}
	if !(BatchPolicy{MaxSize: 1}).Enabled() {
		t.Error("MaxSize 1 (serial batching) must count as enabled")
	}
	if err := (BatchPolicy{MaxSize: -1}).Validate(); err == nil {
		t.Error("negative MaxSize validated")
	}
	if err := (BatchPolicy{MaxSize: 8, MaxHold: -time.Second}).Validate(); err == nil {
		t.Error("negative MaxHold validated")
	}
	if p := (BatchPolicy{MaxSize: 8}).WithDefaults(); p.MaxHold != DefaultMaxHold {
		t.Errorf("default MaxHold = %v, want %v", p.MaxHold, DefaultMaxHold)
	}
}
