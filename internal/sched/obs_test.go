package sched

import (
	"testing"
	"time"

	"menos/internal/obs"
)

// fakeClock is a manually advanced virtual clock.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

// TestInstrumentedCountersMatchStats checks the registry view against
// the scheduler's own Stats accounting, with waits measured on the
// injected (virtual) clock.
func TestInstrumentedCountersMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	clk := &fakeClock{}
	s := New(100, PolicyFCFSBackfill)
	s.Instrument(reg, clk)
	col := &collector{}

	// a fits now; b must wait for a to complete; c backfills past b.
	mustSubmit(t, s, "a", KindForward, 80, col.grant("a"))
	clk.now = 5 * time.Second
	mustSubmit(t, s, "b", KindBackward, 60, col.grant("b"))
	mustSubmit(t, s, "c", KindForward, 20, col.grant("c"))
	clk.now = 15 * time.Second
	s.Complete("a")

	st := s.Stats()
	if v := reg.Counter(obs.MetricSchedSubmitted).Value(); v != int64(st.Submitted) {
		t.Errorf("submitted counter %d != stats %d", v, st.Submitted)
	}
	if v := reg.Counter(obs.MetricSchedGranted).Value(); v != int64(st.Granted) {
		t.Errorf("granted counter %d != stats %d", v, st.Granted)
	}
	if v := reg.Counter(obs.MetricSchedBackfilled).Value(); v != int64(st.Backfilled) {
		t.Errorf("backfilled counter %d != stats %d", v, st.Backfilled)
	}
	if v := reg.Counter(obs.MetricSchedCompleted).Value(); v != int64(st.Completed) {
		t.Errorf("completed counter %d != stats %d", v, st.Completed)
	}
	if v := reg.Gauge(obs.MetricSchedQueueDepthMax).Value(); v != int64(st.MaxQueueDepth) {
		t.Errorf("max queue depth gauge %d != stats %d", v, st.MaxQueueDepth)
	}

	// Waits on the virtual clock: a and c granted immediately (0s);
	// b waited 10 virtual seconds. No wall time is anywhere near 10s.
	snap := reg.Histogram(obs.MetricSchedWaitSeconds, nil).Snapshot()
	if snap.Count != 3 {
		t.Fatalf("wait observations = %d, want 3", snap.Count)
	}
	if snap.Sum < 9.99 || snap.Sum > 10.01 {
		t.Errorf("wait sum = %.3fs, want 10s of virtual time", snap.Sum)
	}

	// Head-of-line blocked time: b headed the queue from 5s to 15s.
	hol := reg.Histogram(obs.MetricSchedHOLBlockedSeconds, nil).Snapshot()
	if hol.Count != 1 {
		t.Fatalf("HOL observations = %d, want 1", hol.Count)
	}
	if hol.Sum < 9.99 || hol.Sum > 10.01 {
		t.Errorf("HOL blocked sum = %.3fs, want 10s", hol.Sum)
	}
}

// TestInstrumentedRejections counts every reject path.
func TestInstrumentedRejections(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(100, PolicyFCFSBackfill)
	s.Instrument(reg, &fakeClock{})
	col := &collector{}

	if err := s.Submit("big", KindForward, 200, col.grant("big")); err == nil {
		t.Fatal("oversized request accepted")
	}
	mustSubmit(t, s, "a", KindForward, 90, col.grant("a"))
	if err := s.Submit("a", KindForward, 10, col.grant("a2")); err == nil {
		t.Fatal("duplicate outstanding accepted")
	}
	if v := reg.Counter(obs.MetricSchedRejected).Value(); v != 2 {
		t.Errorf("rejected counter = %d, want 2", v)
	}
}
