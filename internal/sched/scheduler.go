// Package sched implements the Menos task scheduler of §4 (Algorithm
// 2): an event-driven, operation-level GPU-memory scheduler combining
// FCFS with backfilling, adapted from Mu'alem & Feitelson's IBM SP2
// scheduler as the paper describes.
//
// The scheduler is time-source agnostic: it reacts to Submit (data
// arrived from a client) and Complete (a computation released its
// memory) events and grants execution through a callback, so the same
// code drives both the discrete-event simulation and the real TCP
// runtime.
package sched

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"menos/internal/obs"
)

// Errors reported by the scheduler. ErrOverloaded (admission.go) joins
// them when an SLO is configured.
var (
	ErrNeverFits   = errors.New("sched: request exceeds schedulable GPU memory")
	ErrOutstanding = errors.New("sched: client already has an outstanding request or allocation")
	ErrClosed      = errors.New("sched: scheduler closed")
)

// RequestKind distinguishes the two operation classes of §4.2.
type RequestKind int

// Request kinds.
const (
	KindForward  RequestKind = iota + 1 // no-grad forward: small footprint
	KindBackward                        // re-forward + backward: large footprint
)

// String returns the kind name.
func (k RequestKind) String() string {
	switch k {
	case KindForward:
		return "forward"
	case KindBackward:
		return "backward"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Policy selects the scheduling discipline. The paper's design is
// FCFS+backfilling; the others exist as ablations.
type Policy int

// Scheduling policies.
const (
	// PolicyFCFSBackfill is Algorithm 2: strict FCFS for the queue
	// head, backfilling later requests into leftover memory.
	PolicyFCFSBackfill Policy = iota + 1
	// PolicyFCFS grants strictly in order; the head blocks everyone.
	PolicyFCFS
	// PolicySmallestFirst always grants the smallest fitting request;
	// maximizes utilization but can starve large backward requests.
	PolicySmallestFirst
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyFCFSBackfill:
		return "fcfs+backfill"
	case PolicyFCFS:
		return "fcfs"
	case PolicySmallestFirst:
		return "smallest-first"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// request is a queued scheduling request. A batch request (SubmitBatch)
// carries the member shares that sum to bytes; clientID is then the
// batch ID and each member is billed individually at grant time.
type request struct {
	clientID string
	kind     RequestKind
	bytes    int64
	grant    func()
	at       time.Duration // submit time on the telemetry clock
	members  []BatchMember // nil for plain Submit requests
}

// schedMetrics holds the scheduler's resolved telemetry handles. All
// fields are nil-safe obs handles, so update sites are unconditional;
// the struct pointer itself gates the clock reads.
type schedMetrics struct {
	reg        *obs.Registry
	clock      obs.Clock
	submitted  *obs.Counter
	granted    *obs.Counter
	backfilled *obs.Counter
	completed  *obs.Counter
	rejected   *obs.Counter
	queueDepth *obs.Gauge
	depthMax   *obs.Gauge
	wait       *obs.Histogram
	holBlocked *obs.Histogram
}

// Stats aggregates scheduler activity.
type Stats struct {
	Submitted     int64
	Granted       int64
	Backfilled    int64 // granted out of FCFS order
	Completed     int64
	Decisions     int64
	DecisionTime  time.Duration // cumulative wall time inside schedule()
	MaxQueueDepth int
}

// Scheduler tracks available GPU memory and pending operation
// requests.
type Scheduler struct {
	mu      sync.Mutex
	policy  Policy
	avail   int64
	total   int64
	alloc   map[string]int64
	waiting []*request
	closed  bool
	stats   Stats

	m *schedMetrics
	// holSince marks when the queue head last became blocked (the
	// head-of-line interval the backfill policy exists to fill).
	holSince  time.Duration
	holActive bool

	// adm, when non-nil, closes the telemetry→scheduling feedback
	// loop (docs/ADMISSION.md). With adm == nil every code path below
	// is bit-identical to the plain Algorithm-2 scheduler.
	adm *AdmissionController
	// resident marks clients that have been granted memory at least
	// once; admission control protects them over newcomers.
	resident map[string]struct{}
	// reserved sums the bytes held by Reserve (long-lived holdings):
	// the floor below total that queued requests can never use.
	reserved    int64
	reservedIDs map[string]struct{}

	// batchMembers remembers the member shares of live batch
	// allocations so Complete(batchID) can release each member's bytes
	// in the ledger.
	batchMembers map[string][]BatchMember

	// ledger, when non-nil, receives per-tenant accounting events:
	// grants and reservations as byte holdings (persistent vs transient
	// via the owner-tag prefix), grant waits, and admission sheds. Pure
	// bookkeeping — it never feeds back into scheduling decisions.
	ledger *obs.Ledger
}

// New creates a scheduler over totalMem bytes of schedulable GPU
// memory.
func New(totalMem int64, policy Policy) *Scheduler {
	return &Scheduler{
		policy:       policy,
		avail:        totalMem,
		total:        totalMem,
		alloc:        make(map[string]int64),
		resident:     make(map[string]struct{}),
		reservedIDs:  make(map[string]struct{}),
		batchMembers: make(map[string][]BatchMember),
	}
}

// Instrument wires the scheduler to a telemetry registry and clock.
// It must be called before the scheduler is shared between goroutines
// (typically right after New). The clock decides whether wait and
// head-of-line times are wall time (obs.NewWallClock) or virtual time
// (obs.ClockFunc(kernel.Now)); both registry and clock are required.
func (s *Scheduler) Instrument(reg *obs.Registry, clock obs.Clock) {
	if reg == nil || clock == nil {
		return
	}
	s.m = &schedMetrics{
		clock:      clock,
		submitted:  reg.Counter(obs.MetricSchedSubmitted, "scheduling requests submitted"),
		granted:    reg.Counter(obs.MetricSchedGranted, "scheduling requests granted"),
		backfilled: reg.Counter(obs.MetricSchedBackfilled, "grants made out of FCFS order"),
		completed:  reg.Counter(obs.MetricSchedCompleted, "allocations reclaimed"),
		rejected:   reg.Counter(obs.MetricSchedRejected, "submissions rejected (never-fits, duplicate, closed)"),
		queueDepth: reg.Gauge(obs.MetricSchedQueueDepth, "requests currently waiting"),
		depthMax:   reg.Gauge(obs.MetricSchedQueueDepthMax, "high-water mark of the wait queue"),
		wait:       reg.Histogram(obs.MetricSchedWaitSeconds, obs.DurationBuckets(), "submit-to-grant wait time"),
		holBlocked: reg.Histogram(obs.MetricSchedHOLBlockedSeconds, obs.DurationBuckets(), "contiguous intervals the queue head was too large to grant"),
	}
	s.m.reg = reg
	if s.adm != nil {
		s.adm.instrument(reg)
	}
}

// EnableAdmission activates SLO-aware admission control (see
// docs/ADMISSION.md). Like Instrument it must be called during setup,
// before the scheduler is shared between goroutines. The clock should
// match the plane the scheduler runs on: obs.NewWallClock() for the
// real server, obs.ClockFunc(kernel.Now) for the simulator. A
// disabled SLO (zero TargetP99) is a no-op; a nil clock is an error.
func (s *Scheduler) EnableAdmission(slo SLO, clock obs.Clock) error {
	if !slo.Enabled() {
		return nil
	}
	if clock == nil {
		return errors.New("sched: admission control needs a clock")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// One time source for everything: if the scheduler is already
	// instrumented, request timestamps come from the instrument clock,
	// so the controller must read the same epoch.
	if s.m != nil {
		clock = s.m.clock
	}
	s.adm = newAdmissionController(slo, clock)
	if s.m != nil {
		s.adm.instrument(s.m.reg)
	}
	return nil
}

// SetLedger attaches a per-tenant accounting ledger. Setup-time only,
// before the scheduler is shared between goroutines. The scheduler is
// the single source of GPU byte-second accrual: every grant and
// reservation opens a holding, every Complete closes it, so persistent
// ("persist:"/"decode:"-tagged reservations) and transient (plain
// client grants) residency are attributed without double counting.
func (s *Scheduler) SetLedger(l *obs.Ledger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ledger = l
}

// SetAdmissionHook registers f to run on every admission state change
// (e.g. to trigger a flight-recorder snapshot). Setup-time only, after
// EnableAdmission; a hook set while admission control is disabled is
// dropped. The hook fires under the scheduler mutex, so it must not
// call back into the scheduler — queue the work instead
// (obs.FlightRecorder.TriggerAsync is safe).
func (s *Scheduler) SetAdmissionHook(f func(from, to AdmissionState)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adm != nil {
		s.adm.hook = f
	}
}

// clockNow returns the telemetry clock reading, preferring the
// instrumented clock, falling back to the admission clock; ok is false
// when neither is wired (then request timestamps stay zero, exactly as
// before instrumentation existed).
func (s *Scheduler) clockNow() (time.Duration, bool) {
	switch {
	case s.m != nil:
		return s.m.clock.Now(), true
	case s.adm != nil:
		return s.adm.clock.Now(), true
	default:
		return 0, false
	}
}

// headAgeLocked returns the age of the oldest waiting request at now.
// Caller holds s.mu.
func (s *Scheduler) headAgeLocked(now time.Duration) time.Duration {
	if len(s.waiting) == 0 {
		return 0
	}
	if age := now - s.waiting[0].at; age > 0 {
		return age
	}
	return 0
}

// Submit registers a request for bytes of GPU memory on behalf of
// clientID; grant is invoked (possibly synchronously, under no lock)
// when the request is scheduled. A client may have at most one
// outstanding request or live allocation.
func (s *Scheduler) Submit(clientID string, kind RequestKind, bytes int64, grant func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rejectedInc()
		return ErrClosed
	}
	// Fail fast on requests that could never be granted: larger than
	// the total budget, or larger than what Reserve's long-lived
	// holdings (persistent client state, KV caches) leave schedulable.
	// Without this check such a request would sit at the queue head
	// forever, head-of-line-blocking every client behind it.
	if bytes > s.total-s.reserved {
		s.mu.Unlock()
		s.rejectedInc()
		return fmt.Errorf("%w: need %d, schedulable %d (total %d, %d reserved) (client %q)",
			ErrNeverFits, bytes, s.total-s.reserved, s.total, s.reserved, clientID)
	}
	if _, ok := s.alloc[clientID]; ok {
		s.mu.Unlock()
		s.rejectedInc()
		return fmt.Errorf("%w: %q holds an allocation", ErrOutstanding, clientID)
	}
	for _, r := range s.waiting {
		if r.clientID == clientID {
			s.mu.Unlock()
			s.rejectedInc()
			return fmt.Errorf("%w: %q is queued", ErrOutstanding, clientID)
		}
	}
	if s.adm != nil {
		now, _ := s.clockNow()
		s.adm.evaluate(now, s.headAgeLocked(now))
		if err := s.adm.admit(clientID); err != nil {
			s.ledger.Shed(clientID)
			s.mu.Unlock()
			s.rejectedInc()
			return err
		}
	}
	req := &request{clientID: clientID, kind: kind, bytes: bytes, grant: grant}
	if now, ok := s.clockNow(); ok {
		req.at = now
	}
	if s.m != nil {
		s.m.submitted.Inc()
	}
	s.waiting = append(s.waiting, req)
	s.stats.Submitted++
	if len(s.waiting) > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = len(s.waiting)
	}
	s.observeQueueDepth()
	grants := s.schedule()
	s.mu.Unlock()
	for _, g := range grants {
		g()
	}
	return nil
}

// Complete reclaims the memory allocated to clientID (Algorithm 2,
// lines 10-13) and runs a scheduling cycle. It returns the reclaimed
// byte count (0 if the client held nothing).
func (s *Scheduler) Complete(clientID string) int64 {
	s.mu.Lock()
	reclaimed := s.alloc[clientID]
	if reclaimed > 0 {
		s.avail += reclaimed
		delete(s.alloc, clientID)
		if _, ok := s.reservedIDs[clientID]; ok {
			s.reserved -= reclaimed
			delete(s.reservedIDs, clientID)
		}
		s.stats.Completed++
		if s.m != nil {
			s.m.completed.Inc()
		}
		if members, ok := s.batchMembers[clientID]; ok {
			for _, m := range members {
				s.ledger.Release(m.ClientID, m.Bytes)
			}
			delete(s.batchMembers, clientID)
		} else {
			s.ledger.Release(clientID, reclaimed)
		}
	}
	grants := s.schedule()
	s.mu.Unlock()
	for _, g := range grants {
		g()
	}
	return reclaimed
}

// schedule is Algorithm 2's SCHEDULE procedure. Caller holds s.mu; the
// returned grant callbacks must be invoked after unlocking.
func (s *Scheduler) schedule() []func() {
	start := time.Now()
	defer func() {
		s.stats.Decisions++
		s.stats.DecisionTime += time.Since(start)
	}()

	var grants []func()
	switch s.policy {
	case PolicySmallestFirst:
		// Ablation: repeatedly grant the smallest fitting request.
		for {
			best := -1
			for i, r := range s.waiting {
				if r.bytes <= s.avail && (best < 0 || r.bytes < s.waiting[best].bytes) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			grants = append(grants, s.grantAt(best, best != 0))
		}
	case PolicyFCFS:
		// Strict order: stop at the first request that does not fit.
		for len(s.waiting) > 0 && s.waiting[0].bytes <= s.avail {
			grants = append(grants, s.grantAt(0, false))
		}
	default: // PolicyFCFSBackfill
		// Lines 15-22: grant the head if it fits; if the head does not
		// fit, keep it (fairness) and fall through to backfilling.
		for len(s.waiting) > 0 && s.waiting[0].bytes <= s.avail {
			grants = append(grants, s.grantAt(0, false))
		}
		// Lines 23-24: backfill later requests into leftover memory.
		// Under admission pressure the backfill turns conservative:
		// only small forward-class requests from resident clients may
		// jump the head (admission.go).
		for i := 1; i < len(s.waiting); {
			if r := s.waiting[i]; r.bytes <= s.avail {
				if s.adm != nil && !s.adm.backfillAllowed(r, s.isResident(r.clientID)) {
					i++
					continue
				}
				grants = append(grants, s.grantAt(i, true))
				continue // slice shifted; same index is the next item
			}
			i++
		}
	}
	if s.adm != nil {
		now, _ := s.clockNow()
		s.adm.evaluate(now, s.headAgeLocked(now))
	}
	s.observeHeadOfLine()
	return grants
}

// isResident reports whether clientID has ever been granted memory.
// Caller holds s.mu.
func (s *Scheduler) isResident(clientID string) bool {
	_, ok := s.resident[clientID]
	return ok
}

// observeHeadOfLine tracks contiguous intervals during which the queue
// head does not fit in free memory — the blocked time backfilling
// works around. Caller holds s.mu.
func (s *Scheduler) observeHeadOfLine() {
	if s.m == nil {
		return
	}
	blocked := len(s.waiting) > 0 && s.waiting[0].bytes > s.avail
	now := s.m.clock.Now()
	switch {
	case blocked && !s.holActive:
		s.holActive = true
		s.holSince = now
	case !blocked && s.holActive:
		s.holActive = false
		s.m.holBlocked.Observe((now - s.holSince).Seconds())
	}
}

// rejectedInc counts a rejected submission (atomic; callable with or
// without s.mu).
func (s *Scheduler) rejectedInc() {
	if s.m != nil {
		s.m.rejected.Inc()
	}
}

// observeQueueDepth publishes the current and high-water queue depth.
// Caller holds s.mu.
func (s *Scheduler) observeQueueDepth() {
	if s.m == nil {
		return
	}
	depth := int64(len(s.waiting))
	s.m.queueDepth.Set(depth)
	s.m.depthMax.SetMax(depth)
}

// grantAt removes the request at index i, allocates its memory, and
// returns its grant callback. Caller holds s.mu.
func (s *Scheduler) grantAt(i int, backfilled bool) func() {
	r := s.waiting[i]
	s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
	s.avail -= r.bytes
	s.alloc[r.clientID] = r.bytes
	s.stats.Granted++
	if backfilled {
		s.stats.Backfilled++
	}
	s.resident[r.clientID] = struct{}{}
	if len(r.members) == 0 {
		s.ledger.Acquire(r.clientID, r.bytes)
	} else {
		// Batch grant: each member is billed its own byte share, and
		// the member list is kept so Complete(batchID) can release the
		// same shares.
		for _, m := range r.members {
			s.resident[m.ClientID] = struct{}{}
			s.ledger.Acquire(m.ClientID, m.Bytes)
		}
		s.batchMembers[r.clientID] = r.members
	}
	if now, ok := s.clockNow(); ok {
		wait := now - r.at
		if s.m != nil {
			s.m.granted.Inc()
			if backfilled {
				s.m.backfilled.Inc()
			}
			// One wait observation per member (a plain request counts
			// as one member), so the unlabeled histogram matches the
			// per-member observations the ledger records below.
			for range max(len(r.members), 1) {
				s.m.wait.Observe(wait.Seconds())
			}
			s.observeQueueDepth()
		}
		if s.adm != nil {
			s.adm.observe(now, wait)
		}
		// The ledger's labeled wait family shares the unlabeled
		// histogram's name and sees the exact same value, so the
		// per-client series sum back to the aggregate.
		if len(r.members) == 0 {
			s.ledger.AddGrantWait(r.clientID, wait.Seconds())
		} else {
			for _, m := range r.members {
				s.ledger.AddGrantWait(m.ClientID, wait.Seconds())
			}
		}
	}
	return r.grant
}

// Reserve immediately claims bytes for a long-lived holding (e.g. a
// client's persistent adapter/optimizer state) outside the request
// queue. Unlike Submit it never queues: if the memory is not free right
// now, it fails. Release the reservation with Complete(id).
func (s *Scheduler) Reserve(id string, bytes int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.rejectedInc()
		return ErrClosed
	}
	if _, ok := s.alloc[id]; ok {
		s.rejectedInc()
		return fmt.Errorf("%w: %q holds an allocation", ErrOutstanding, id)
	}
	if bytes > s.avail {
		s.rejectedInc()
		return fmt.Errorf("%w: reserve %d, available %d", ErrNeverFits, bytes, s.avail)
	}
	s.avail -= bytes
	s.alloc[id] = bytes
	s.reserved += bytes
	s.reservedIDs[id] = struct{}{}
	s.resident[id] = struct{}{}
	s.ledger.Acquire(id, bytes)
	return nil
}

// Schedulable returns the memory a queued request can ever hope to be
// granted: the total budget minus long-lived reservations. Submissions
// above it fail fast with ErrNeverFits.
func (s *Scheduler) Schedulable() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total - s.reserved
}

// AdmissionState returns the current admission-control state
// (StateOpen when admission control is disabled).
func (s *Scheduler) AdmissionState() AdmissionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adm == nil {
		return StateOpen
	}
	return s.adm.state
}

// AdmissionStats snapshots admission-controller activity (zero when
// admission control is disabled).
func (s *Scheduler) AdmissionStats() AdmissionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adm == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		State:       s.adm.state,
		P99:         s.adm.lastP99,
		Transitions: s.adm.transitions,
		Shed:        s.adm.shed,
		Deferred:    s.adm.deferred,
	}
}

// Total returns the scheduler's full memory budget.
func (s *Scheduler) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Available returns schedulable free memory.
func (s *Scheduler) Available() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.avail
}

// QueueDepth returns the number of waiting requests.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiting)
}

// Allocated returns the bytes currently granted to clientID.
func (s *Scheduler) Allocated(clientID string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc[clientID]
}

// Stats returns a snapshot of scheduler statistics.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close rejects future submissions. Pending requests stay queued (the
// owner is expected to drain or abandon them).
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}
