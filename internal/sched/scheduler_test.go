package sched

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

// collector records grant order.
type collector struct {
	mu    sync.Mutex
	order []string
}

func (c *collector) grant(id string) func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.order = append(c.order, id)
	}
}

func (c *collector) got() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

func TestImmediateGrantWhenMemoryAvailable(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	var c collector
	if err := s.Submit("a", KindForward, 40, c.grant("a")); err != nil {
		t.Fatal(err)
	}
	if got := c.got(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("order = %v", got)
	}
	if s.Available() != 60 || s.Allocated("a") != 40 {
		t.Fatalf("avail %d alloc %d", s.Available(), s.Allocated("a"))
	}
}

func TestCompleteReclaimsAndSchedules(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	var c collector
	mustSubmit(t, s, "a", KindBackward, 80, c.grant("a"))
	mustSubmit(t, s, "b", KindBackward, 80, c.grant("b"))
	if got := c.got(); len(got) != 1 {
		t.Fatalf("b granted early: %v", got)
	}
	if s.QueueDepth() != 1 {
		t.Fatalf("queue depth %d", s.QueueDepth())
	}
	if reclaimed := s.Complete("a"); reclaimed != 80 {
		t.Fatalf("reclaimed %d", reclaimed)
	}
	if got := c.got(); len(got) != 2 || got[1] != "b" {
		t.Fatalf("order = %v", got)
	}
	// Completing a client with no allocation reclaims nothing.
	if reclaimed := s.Complete("zzz"); reclaimed != 0 {
		t.Fatalf("phantom reclaim %d", reclaimed)
	}
}

// TestBackfilling is the core §4.2 behaviour: a blocked large head
// does not prevent later small requests from running, but the head
// retains priority (FCFS fairness).
func TestBackfilling(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	var c collector
	mustSubmit(t, s, "big1", KindBackward, 70, c.grant("big1"))
	mustSubmit(t, s, "big2", KindBackward, 70, c.grant("big2")) // blocked head
	mustSubmit(t, s, "small", KindForward, 20, c.grant("small"))
	// small fits in the 30 left over while big2 waits.
	got := c.got()
	if len(got) != 2 || got[1] != "small" {
		t.Fatalf("order = %v, want backfilled small", got)
	}
	st := s.Stats()
	if st.Backfilled != 1 {
		t.Fatalf("backfilled = %d", st.Backfilled)
	}
	// When big1 finishes, the head (big2) is preferred over new small
	// requests...
	s.Complete("big1")
	got = c.got()
	if len(got) != 3 || got[2] != "big2" {
		t.Fatalf("order = %v, want big2 after completion", got)
	}
}

// TestFCFSHeadNotStarved: under backfill, small requests keep flowing,
// but the blocked head is granted as soon as memory allows — it is
// never bypassed at equal opportunity.
func TestFCFSHeadNotStarved(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	var c collector
	mustSubmit(t, s, "hold", KindBackward, 90, c.grant("hold"))
	mustSubmit(t, s, "bigHead", KindBackward, 90, c.grant("bigHead"))
	// A stream of small requests backfills into the 10 free bytes.
	mustSubmit(t, s, "s1", KindForward, 10, c.grant("s1"))
	mustSubmit(t, s, "s2", KindForward, 10, c.grant("s2")) // queued: no room
	// hold finishes: the head must get the memory even though s2 fits.
	s.Complete("hold")
	got := c.got()
	// After completion 90+? avail = 90 (s1 still holds 10)... wait:
	// avail after hold completes = 100-10(s1) = 90 == bigHead demand.
	if got[len(got)-1] != "bigHead" {
		t.Fatalf("order = %v, head starved", got)
	}
	for _, id := range got {
		if id == "s2" {
			t.Fatalf("s2 bypassed the head: %v", got)
		}
	}
}

func TestPureFCFSBlocksEverything(t *testing.T) {
	s := New(100, PolicyFCFS)
	var c collector
	mustSubmit(t, s, "big1", KindBackward, 70, c.grant("big1"))
	mustSubmit(t, s, "big2", KindBackward, 70, c.grant("big2"))
	mustSubmit(t, s, "small", KindForward, 10, c.grant("small"))
	// Strict FCFS: small waits behind big2 even though it fits.
	if got := c.got(); len(got) != 1 {
		t.Fatalf("order = %v, strict FCFS violated", got)
	}
}

func TestSmallestFirstCanStarveLarge(t *testing.T) {
	s := New(100, PolicySmallestFirst)
	var c collector
	mustSubmit(t, s, "big", KindBackward, 80, c.grant("big"))
	s.Complete("big") // leave empty
	mustSubmit(t, s, "holder", KindForward, 50, c.grant("holder"))
	mustSubmit(t, s, "bigQ", KindBackward, 80, c.grant("bigQ"))
	mustSubmit(t, s, "tiny", KindForward, 30, c.grant("tiny"))
	// Smallest-first grants tiny ahead of bigQ.
	got := c.got()
	if got[len(got)-1] != "tiny" {
		t.Fatalf("order = %v, want tiny granted before bigQ", got)
	}
}

func TestNeverFitsRejected(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	err := s.Submit("a", KindBackward, 101, func() {})
	if !errors.Is(err, ErrNeverFits) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateOutstandingRejected(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	var c collector
	mustSubmit(t, s, "a", KindForward, 90, c.grant("a"))
	// a holds memory: second submit rejected.
	if err := s.Submit("a", KindBackward, 10, func() {}); !errors.Is(err, ErrOutstanding) {
		t.Fatalf("err = %v", err)
	}
	mustSubmit(t, s, "b", KindBackward, 90, c.grant("b")) // queued
	if err := s.Submit("b", KindForward, 10, func() {}); !errors.Is(err, ErrOutstanding) {
		t.Fatalf("queued duplicate err = %v", err)
	}
}

func TestClosedScheduler(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	s.Close()
	if err := s.Submit("a", KindForward, 1, func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(100, PolicyFCFSBackfill)
	var c collector
	mustSubmit(t, s, "a", KindForward, 60, c.grant("a"))
	mustSubmit(t, s, "b", KindForward, 60, c.grant("b"))
	mustSubmit(t, s, "c", KindForward, 30, c.grant("c"))
	s.Complete("a")
	st := s.Stats()
	if st.Submitted != 3 || st.Granted != 3 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Decisions == 0 || st.MaxQueueDepth < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKindAndPolicyStrings(t *testing.T) {
	if KindForward.String() != "forward" || KindBackward.String() != "backward" {
		t.Fatal("kind strings")
	}
	if PolicyFCFSBackfill.String() != "fcfs+backfill" || PolicyFCFS.String() != "fcfs" ||
		PolicySmallestFirst.String() != "smallest-first" {
		t.Fatal("policy strings")
	}
	if RequestKind(0).String() == "" || Policy(0).String() == "" {
		t.Fatal("unknown strings")
	}
}

// Property: the scheduler never over-commits memory and conserves the
// total, across random submit/complete interleavings and policies.
func TestNoOvercommitProperty(t *testing.T) {
	f := func(ops []uint16, policySeed uint8) bool {
		policies := []Policy{PolicyFCFSBackfill, PolicyFCFS, PolicySmallestFirst}
		policy := policies[int(policySeed)%len(policies)]
		const total = 100
		s := New(total, policy)
		granted := make(map[string]bool)
		var mu sync.Mutex
		nextID := 0
		live := []string{}
		for _, op := range ops {
			if op%4 == 0 && len(live) > 0 {
				i := int(op/4) % len(live)
				s.Complete(live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				id := string(rune('A' + nextID%50))
				nextID++
				bytes := int64(op%60) + 1
				kind := KindForward
				if op%2 == 0 {
					kind = KindBackward
				}
				err := s.Submit(id, kind, bytes, func() {
					mu.Lock()
					granted[id] = true
					mu.Unlock()
				})
				if err != nil {
					continue
				}
				live = append(live, id)
			}
			// Invariant: avail in [0, total], and allocated sum + avail == total.
			avail := s.Available()
			if avail < 0 || avail > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: with FCFS+backfill, a granted backfill never exceeds what
// the head left over — i.e. granting never makes avail negative.
func TestBackfillNeverOverflowsProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		const total = 128
		s := New(total, PolicyFCFSBackfill)
		for i, raw := range sizes {
			bytes := int64(raw%100) + 1
			id := string(rune('a'+i%26)) + string(rune('0'+i/26%10))
			_ = s.Submit(id, KindBackward, bytes, func() {})
			if s.Available() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSubmitComplete(t *testing.T) {
	s := New(1000, PolicyFCFSBackfill)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := string(rune('a'+base)) + string(rune('0'+i%10))
				done := make(chan struct{})
				err := s.Submit(id, KindForward, 100, func() { close(done) })
				if err != nil {
					continue
				}
				<-done
				s.Complete(id)
			}
		}(g)
	}
	wg.Wait()
	if s.Available() != 1000 {
		t.Fatalf("leaked memory: avail = %d", s.Available())
	}
}

func mustSubmit(t *testing.T, s *Scheduler, id string, kind RequestKind, bytes int64, grant func()) {
	t.Helper()
	if err := s.Submit(id, kind, bytes, grant); err != nil {
		t.Fatal(err)
	}
}
