package server

import (
	"math"
	"net"
	"testing"
	"time"

	"menos/internal/client"
	"menos/internal/obs"
	"menos/internal/share"
	"menos/internal/tensor"
)

// TestAccountingConservationOverTCP drives two real clients over
// loopback TCP and checks the per-tenant ledger against the unlabeled
// aggregates: every compute second, grant wait and iteration lands in
// exactly one {client=...} series of the same metric family, and the
// labeled series sum back to the totals.
func TestAccountingConservationOverTCP(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := share.NewStore(tensor.NewRNG(weightSeed), testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, OnDemand: true, Metrics: reg, ServerID: 7})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	steps := map[string]int{"tenant-a": 3, "tenant-b": 2}
	for id, n := range steps {
		c, err := client.Dial(l.Addr().String(), clientCfg(id))
		if err != nil {
			t.Fatal(err)
		}
		ids, targets := batchFor(clientCfg(id), 3)
		for i := 0; i < n; i++ {
			if _, err := c.Step(ids, targets); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
	}
	waitForTeardown(t, reg)

	// Iterations: unlabeled counter == Σ labeled == Σ steps.
	var total int64
	for _, n := range steps {
		total += int64(n)
	}
	iters := reg.CounterVec(obs.MetricServerIterations, "client")
	var labeled int64
	for _, lbl := range iters.Labels() {
		n := iters.With(lbl).Value()
		if want := int64(steps[lbl]); n != want {
			t.Errorf("iterations{client=%q} = %d, want %d", lbl, n, want)
		}
		labeled += n
	}
	if agg := reg.Counter(obs.MetricServerIterations).Value(); labeled != agg || agg != total {
		t.Errorf("iteration conservation: labeled %d, unlabeled %d, served %d", labeled, agg, total)
	}

	// Compute seconds and grant waits: labeled histograms sum to the
	// unlabeled aggregates (float sums within rounding slack — the two
	// accumulators see the same values, possibly interleaved).
	checkHist := func(name string, bounds []float64) {
		t.Helper()
		agg := reg.Histogram(name, nil).Snapshot()
		if agg.Count == 0 {
			t.Fatalf("%s: no unlabeled observations", name)
		}
		hv := reg.HistogramVec(name, "client", bounds)
		var count int64
		var sum float64
		for _, lbl := range hv.Labels() {
			h, _ := hv.Get(lbl)
			snap := h.Snapshot()
			count += snap.Count
			sum += snap.Sum
		}
		if count != agg.Count {
			t.Errorf("%s: labeled count %d != unlabeled %d", name, count, agg.Count)
		}
		if diff := math.Abs(sum - agg.Sum); diff > 1e-9*math.Max(1, math.Abs(agg.Sum)) {
			t.Errorf("%s: labeled sum %.12f != unlabeled %.12f", name, sum, agg.Sum)
		}
	}
	checkHist(obs.MetricServerComputeSeconds, obs.DurationBuckets())
	checkHist(obs.MetricSchedWaitSeconds, obs.DurationBuckets())

	// Ledger rows: persistent prefixes stripped, wire traffic counted,
	// holdings released on teardown, byte-seconds accrued.
	rows := srv.Ledger().Snapshot()
	if len(rows) != len(steps) {
		t.Fatalf("ledger rows = %+v, want one per tenant", rows)
	}
	for _, u := range rows {
		if _, ok := steps[u.ID]; !ok {
			t.Errorf("unexpected ledger row %q (prefix not stripped?)", u.ID)
		}
		if u.WireTxBytes == 0 || u.WireRxBytes == 0 {
			t.Errorf("%s: wire bytes tx=%d rx=%d, want both > 0", u.ID, u.WireTxBytes, u.WireRxBytes)
		}
		if u.PersistentBytes != 0 || u.TransientBytes != 0 {
			t.Errorf("%s: holdings not released: persist=%d transient=%d", u.ID, u.PersistentBytes, u.TransientBytes)
		}
		if u.PersistentByteSeconds <= 0 {
			t.Errorf("%s: no persistent byte-seconds accrued", u.ID)
		}
		if u.ComputeSeconds <= 0 {
			t.Errorf("%s: no compute accounted", u.ID)
		}
	}

	// The /loadz document after all clients left: identity, capacity
	// and the hosted model, with the ledger rows riding along.
	snap := srv.LoadSnapshot()
	if snap.Server.ID != 7 {
		t.Errorf("server id = %d, want 7", snap.Server.ID)
	}
	if snap.Server.Clients != 0 || snap.Server.CommittedBytes != 0 {
		t.Errorf("stale sessions in snapshot: %+v", snap.Server)
	}
	if snap.Server.CapacityBytes <= 0 || snap.Server.UsedBytes <= 0 {
		t.Errorf("capacity/used not reported: %+v", snap.Server)
	}
	if len(snap.Server.Models) != 1 || snap.Server.Models[0] != testModelCfg().Name {
		t.Errorf("models = %v, want [%s]", snap.Server.Models, testModelCfg().Name)
	}
	if len(snap.Clients) != len(steps) {
		t.Errorf("snapshot clients = %+v, want %d rows", snap.Clients, len(steps))
	}
	if snap.AtSeconds <= 0 {
		t.Errorf("at_seconds = %v, want > 0", snap.AtSeconds)
	}
}

// waitForTeardown blocks until every session's asynchronous teardown
// has run (the active-clients gauge returns to zero).
func waitForTeardown(t *testing.T, reg *obs.Registry) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge(obs.MetricServerActiveClients).Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("active clients gauge stuck at %d", reg.Gauge(obs.MetricServerActiveClients).Value())
		}
		time.Sleep(time.Millisecond)
	}
}
