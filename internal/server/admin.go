// Admin plane: the HTTP surface the control plane (menos-fleetd)
// drives migrations through. It is deliberately separate from the
// metrics Handler — metrics are safe to expose broadly, the admin
// plane mutates serving state — and the daemon mounts it under /admin/
// on the same mux only because both planes are loopback-scoped today.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"menos/internal/checkpoint"
	"menos/internal/fleet"
	"menos/internal/split"
)

const (
	// maxSnapshotBytes bounds a staged session snapshot (adapter
	// params + grads + optimizer slots; far below this for any
	// supported adapter).
	maxSnapshotBytes = 1 << 30
	// maxStaged bounds the number of snapshots parked at this server
	// awaiting their client's redial.
	maxStaged = 1024
)

// stagedSession is a snapshot parked at the target server between
// /admin/prepare and the client's resuming redial.
type stagedSession struct {
	clientID string
	data     []byte
}

// AdminHandler returns the server's control-plane surface:
//
//	POST /admin/migrate   fleet.MigrateOrder JSON: move a resident
//	                      session at its next iteration boundary
//	POST /admin/prepare   stage a session snapshot (raw body) under
//	                      ?token= and ?client= for a resuming redial
//	GET  /admin/sessions  resident session IDs and geometry
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /admin/migrate", s.handleAdminMigrate)
	mux.HandleFunc("POST /admin/prepare", s.handleAdminPrepare)
	mux.HandleFunc("GET /admin/sessions", s.handleAdminSessions)
	return mux
}

func (s *Server) handleAdminMigrate(w http.ResponseWriter, req *http.Request) {
	var ord fleet.MigrateOrder
	if err := json.NewDecoder(io.LimitReader(req.Body, 1<<20)).Decode(&ord); err != nil {
		http.Error(w, "bad order: "+err.Error(), http.StatusBadRequest)
		return
	}
	if ord.ClientID == "" || ord.TargetAddr == "" || ord.TargetAdmin == "" || ord.Token == 0 {
		http.Error(w, "order needs client_id, target_addr, target_admin and a nonzero token", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	sess, ok := s.sessions[ord.ClientID]
	if !ok {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("no session %q", ord.ClientID), http.StatusNotFound)
		return
	}
	if sess.features&split.FeatureMigration == 0 {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("session %q did not negotiate migration", ord.ClientID), http.StatusConflict)
		return
	}
	s.pendingMig[ord.ClientID] = ord
	s.mu.Unlock()
	s.logf("client %q: migration to %s ordered", ord.ClientID, ord.TargetAddr)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "pending"})
}

func (s *Server) handleAdminPrepare(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	token, err := strconv.ParseUint(q.Get("token"), 10, 64)
	if err != nil || token == 0 {
		http.Error(w, "bad token", http.StatusBadRequest)
		return
	}
	clientID := q.Get("client")
	if clientID == "" {
		http.Error(w, "missing client", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxSnapshotBytes))
	if err != nil {
		http.Error(w, "read snapshot: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if len(s.staged) >= maxStaged {
		s.mu.Unlock()
		http.Error(w, "too many staged snapshots", http.StatusTooManyRequests)
		return
	}
	s.staged[token] = &stagedSession{clientID: clientID, data: data}
	s.mu.Unlock()
	s.logf("client %q: snapshot staged (%d bytes, token %d)", clientID, len(data), token)
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleAdminSessions(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	out := make([]fleet.SessionInfo, 0, len(s.sessions))
	for id, sess := range s.sessions {
		_, pending := s.pendingMig[id]
		out = append(out, fleet.SessionInfo{
			ClientID:  id,
			Batch:     sess.batch,
			Seq:       sess.seq,
			Features:  sess.features,
			Migrating: pending,
		})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// takePendingMigration claims the session's migration order, if one
// arrived since the last iteration.
func (s *Server) takePendingMigration(sess *session) (fleet.MigrateOrder, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ord, ok := s.pendingMig[sess.id]
	if ok {
		delete(s.pendingMig, sess.id)
	}
	return ord, ok
}

// takeStaged claims a staged snapshot by resume token.
func (s *Server) takeStaged(token uint64) *stagedSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.staged[token]
	if st != nil {
		delete(s.staged, token)
	}
	return st
}

// executeMigration runs one migration order at a ForwardReq boundary
// (the displaced forward has not been served, so the client replays it
// against the target and no iteration is lost): snapshot the session,
// stage it at the target, redirect the client. An error leaves the
// session serving here — the snapshot possibly parked at the target is
// harmless (it expires unclaimed) because the client never learns the
// token.
func (s *Server) executeMigration(conn io.Writer, sess *session, ord fleet.MigrateOrder) error {
	data, err := checkpoint.EncodeSession(sess.params, sess.optimizer)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	prepURL := fmt.Sprintf("%s/admin/prepare?token=%d&client=%s",
		strings.TrimRight(ord.TargetAdmin, "/"), ord.Token, url.QueryEscape(sess.id))
	resp, err := adminHTTPClient.Post(prepURL, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("stage snapshot at %s: %w", ord.TargetAdmin, err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stage snapshot at %s: %s: %s",
			ord.TargetAdmin, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := split.WriteMessage(conn, &split.MigrateMsg{Target: ord.TargetAddr, Token: ord.Token}); err != nil {
		return fmt.Errorf("redirect: %w", err)
	}
	s.m.migrationsOut.Inc()
	s.logf("client %q: migrated to %s (%d snapshot bytes)", sess.id, ord.TargetAddr, len(data))
	return nil
}

// adminHTTPClient is the snapshot-transfer client. Transfers are
// loopback/datacenter-local; the timeout exists so a wedged target
// aborts the order instead of freezing the source's serving loop.
var adminHTTPClient = &http.Client{Timeout: 30 * time.Second}
