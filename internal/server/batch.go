// Batched serving (docs/BATCHING.md): compatible forward/backward
// requests from concurrently connected clients coalesce — through the
// internal/batch formation engine — into ONE batched kernel invocation
// over the shared frozen base, with per-row adapter dispatch
// (adapter.MultiLoRALinear). The batch is granted atomically by the
// scheduler (SubmitBatch), each member is billed its own bytes, grant
// wait and compute share, and the math is bit-identical to serving the
// members one at a time (pinned by TestBatchedServerBitIdentical and,
// at the model layer, the multilora adapter tests).
package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"menos/internal/adapter"
	"menos/internal/batch"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/obs"
	"menos/internal/sched"
	"menos/internal/split"
	"menos/internal/tensor"
)

// batchWork is the Payload of one member's batch.Item: the serving
// goroutine fills the request half before Join, the executor fills the
// outcome half before the item is released.
type batchWork struct {
	sess    *session
	x       *tensor.Tensor // this member's input (activations or dy)
	batch   int
	seq     int
	traceID uint64

	out  *tensor.Tensor // this member's slice of the batched output
	wait time.Duration
	comp time.Duration
}

// batchable reports whether a session's requests may join batches:
// batching re-injects the session's adapter layers per-row, which is
// implemented for LoRA only, and the executor runs the OnDemand
// (no-grad forward, re-forward backward) protocol.
func (s *Server) batchable(sess *session) (*adapter.LoRAAdapter, bool) {
	if s.engine == nil || !s.cfg.OnDemand {
		return nil, false
	}
	la, ok := sess.inst.Adapter().(*adapter.LoRAAdapter)
	return la, ok
}

// batchKey is the compatibility class of one request: members must
// share the stacked-tensor shape (cut point, sequence length), the
// phase, and the ordered injection-target list so their per-block layer
// lists align segment-for-segment. Ranks may differ freely — per-row
// dispatch keeps each member's own A/B factors.
func batchKey(sess *session, la *adapter.LoRAAdapter, kind sched.RequestKind, seq int) batch.Key {
	parts := make([]string, len(la.Config.Targets))
	for i, t := range la.Config.Targets {
		parts[i] = t.String()
	}
	return batch.Key{Cut: sess.inst.Cut, Seq: seq, Kind: kind, Sig: strings.Join(parts, ",")}
}

// serveForwardBatched joins the forward to its compatibility group and
// blocks until the batched invocation ran; everything after Join is
// this session's private state, touched only by its own goroutine.
func (s *Server) serveForwardBatched(conn net.Conn, sess *session, req *split.ForwardReq, key batch.Key) error {
	w := &batchWork{sess: sess, x: req.Activations, batch: req.Batch, seq: req.Seq, traceID: req.TraceID}
	it := &batch.Item{Client: sess.id, Rows: req.Batch * req.Seq, Bytes: sess.demands.ForwardBytes, Payload: w}
	if err := s.engine.Join(key, it); err != nil {
		return err
	}
	if it.Err != nil {
		return it.Err
	}
	sess.cachedInput = req.Activations
	sess.cachedIter = req.Iter
	sess.cachedBatch = req.Batch
	sess.cachedSeq = req.Seq
	s.recordIterationHalf(sess, w.wait, w.comp, req.TraceID)
	plain, packed, err := s.encodeWire(sess, w.out)
	if err != nil {
		return fmt.Errorf("batched forward: %w", err)
	}
	return split.WriteMessage(conn, &split.ForwardResp{Iter: req.Iter, Activations: plain, Packed: packed, TraceID: sess.echoTrace(req.TraceID)})
}

// serveBackwardBatched mirrors serveForwardBatched for the re-forward +
// backward phase. The optimizer step runs here, after Join returns, so
// each member's parameters are only ever touched by its own goroutine.
func (s *Server) serveBackwardBatched(conn net.Conn, sess *session, req *split.BackwardReq, key batch.Key) error {
	w := &batchWork{sess: sess, x: req.Gradients, batch: sess.cachedBatch, seq: sess.cachedSeq, traceID: req.TraceID}
	it := &batch.Item{Client: sess.id, Rows: sess.cachedBatch * sess.cachedSeq, Bytes: sess.demands.BackwardBytes, Payload: w}
	if err := s.engine.Join(key, it); err != nil {
		return err
	}
	if it.Err != nil {
		return it.Err
	}
	sess.cachedInput = nil
	if req.Apply {
		if err := sess.optimizer.Step(sess.params); err != nil {
			return err
		}
		nn.ZeroGrads(sess.params)
	}
	s.recordIterationHalf(sess, w.wait, w.comp, req.TraceID)
	s.stats.iterations.Add(1)
	s.m.iterations.Inc()
	s.ledger.AddIteration(sess.id)
	plain, packed, err := s.encodeWire(sess, w.out)
	if err != nil {
		return fmt.Errorf("batched backward: %w", err)
	}
	return split.WriteMessage(conn, &split.BackwardResp{Iter: req.Iter, Gradients: plain, Packed: packed, TraceID: sess.echoTrace(req.TraceID)})
}

// execBatch runs one formed batch: acquire the aggregate grant, build
// a multi-adapter body over a pristine clone of the shared blocks,
// stack the members' rows, run one invocation, slice results back out.
// A scheduler rejection (overload shed) lands in every member's Err and
// flows back through the serving loop's retryable path, so sessions
// survive sheds exactly as they do on the serial path.
func (s *Server) execBatch(key batch.Key, items []*batch.Item) {
	fail := func(err error) {
		for _, it := range items {
			it.Err = err
		}
	}
	members := make([]sched.BatchMember, len(items))
	works := make([]*batchWork, len(items))
	for i, it := range items {
		members[i] = sched.BatchMember{ClientID: it.Client, Bytes: it.Bytes}
		works[i] = it.Payload.(*batchWork)
	}
	waitSpans := make([]*obs.SpanHandle, len(items))
	for i, w := range works {
		waitSpans[i] = s.cfg.Tracer.BeginT(w.sess.id, "wait:"+key.Kind.String(), "sched", w.traceID)
	}
	batchID := fmt.Sprintf("batch-%d", s.batchSeq.Add(1))
	granted := make(chan struct{}, 1)
	start := time.Now()
	if err := s.scheduler.SubmitBatch(batchID, key.Kind, members, func() { granted <- struct{}{} }); err != nil {
		if errors.Is(err, sched.ErrNeverFits) {
			s.cfg.Flight.TriggerAsync(obs.FlightReasonOOM)
		}
		for _, sp := range waitSpans {
			sp.End()
		}
		fail(err)
		return
	}
	<-granted
	wait := time.Since(start)
	for i, w := range works {
		waitSpans[i].End()
		w.wait = wait
		s.m.schedWait.ObserveExemplar(wait.Seconds(), w.traceID)
	}
	defer s.scheduler.Complete(batchID)

	name := "forward"
	if key.Kind == sched.KindBackward {
		name = "backward"
	}
	tStart := s.cfg.Tracer.Now()
	compStart := time.Now()
	if err := s.runBatched(key, works); err != nil {
		fail(err)
		return
	}
	comp := time.Since(compStart)
	// Bill each member its token-row share of the one invocation, the
	// remainder to the last member so Σ shares is exactly comp — the
	// conservation contract: per-client compute summed across members
	// equals the device time the batch actually spent.
	var totalRows int
	for _, it := range items {
		totalRows += it.Rows
	}
	var billed time.Duration
	for i, it := range items {
		share := comp
		if i < len(items)-1 {
			share = time.Duration(float64(comp) * float64(it.Rows) / float64(totalRows))
		} else {
			share = comp - billed
		}
		billed += share
		works[i].comp = share
		s.cfg.Tracer.RecordT(works[i].sess.id, name, "compute", works[i].traceID, tStart, share)
	}
}

// runBatched executes the stacked model pass for one granted batch.
func (s *Server) runBatched(key batch.Key, works []*batchWork) error {
	memberLayers := make([][]*adapter.LoRALinear, len(works))
	rows := make([]int, len(works))
	inputs := make([]*tensor.Tensor, len(works))
	var targets []adapter.Target
	totalBatch := 0
	for i, w := range works {
		la, ok := w.sess.inst.Adapter().(*adapter.LoRAAdapter)
		if !ok {
			return fmt.Errorf("batched member %q without a LoRA adapter", w.sess.id)
		}
		if i == 0 {
			targets = la.Config.Targets
		}
		memberLayers[i] = la.Layers()
		rows[i] = w.batch * w.seq
		totalBatch += w.batch
		if key.Kind == sched.KindForward {
			inputs[i] = w.x
		} else {
			inputs[i] = w.sess.cachedInput
			if inputs[i] == nil {
				return fmt.Errorf("member %q: backward before forward", w.sess.id)
			}
		}
	}
	// The clone shares the frozen base parameters (and the mutex-guarded
	// scratch arena) with every serial instance; only the wrapper layers
	// holding the members' adapter segments are fresh.
	blocks := model.ShallowCloneBlocks(s.store.Master().Blocks[key.Cut:])
	if _, err := adapter.InjectMultiLoRA(blocks, targets, memberLayers, rows); err != nil {
		return fmt.Errorf("multi-adapter injection: %w", err)
	}
	body := model.Body(blocks)
	stacked, err := tensor.StackRows(inputs)
	if err != nil {
		return fmt.Errorf("stacking member inputs: %w", err)
	}

	if key.Kind == sched.KindForward {
		// Fig. 3(d) first forward: no-grad, one pass over the stack.
		ys, _, err := body.Forward(stacked, totalBatch, key.Seq, false)
		if err != nil {
			return err
		}
		return sliceResults(works, rows, ys)
	}
	// Backward: re-forward the stacked cached inputs with gradient
	// preparation, then one stacked backward. Gradients accumulate into
	// each member's own adapter params — the injected segments reference
	// them directly, so there is nothing to copy back.
	_, cache, err := body.Forward(stacked, totalBatch, key.Seq, true)
	if err != nil {
		return err
	}
	grads := make([]*tensor.Tensor, len(works))
	for i, w := range works {
		grads[i] = w.x
	}
	dyStack, err := tensor.StackRows(grads)
	if err != nil {
		return fmt.Errorf("stacking member gradients: %w", err)
	}
	dx, err := body.Backward(cache, dyStack)
	if err != nil {
		return err
	}
	return sliceResults(works, rows, dx)
}

// sliceResults hands each member its consecutive row span of the
// stacked result (views share storage; the protocol writer copies).
func sliceResults(works []*batchWork, rows []int, out *tensor.Tensor) error {
	lo := 0
	for i, w := range works {
		hi := lo + rows[i]
		part, err := out.Slice2D(lo, hi)
		if err != nil {
			return fmt.Errorf("slicing member %q result: %w", w.sess.id, err)
		}
		w.out = part
		lo = hi
	}
	return nil
}
