package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/obs"
	"menos/internal/sched"
	"menos/internal/share"
	"menos/internal/tensor"
)

// stepBarrier releases n goroutines at a time, so lockstep clients hit
// the server within one batch-formation hold window.
type stepBarrier struct {
	mu      sync.Mutex
	n       int
	arrived int
	waiting chan struct{}
}

func newStepBarrier(n int) *stepBarrier {
	return &stepBarrier{n: n, waiting: make(chan struct{})}
}

func (b *stepBarrier) wait() {
	b.mu.Lock()
	b.arrived++
	ch := b.waiting
	if b.arrived == b.n {
		b.arrived = 0
		b.waiting = make(chan struct{})
		close(ch)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	<-ch
}

func newBatchedServer(t *testing.T, maxSize int, reg *obs.Registry) string {
	t.Helper()
	store, err := share.NewStore(tensor.NewRNG(weightSeed), testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:    store,
		OnDemand: true,
		Batch:    sched.BatchPolicy{MaxSize: maxSize, MaxHold: 200 * time.Millisecond},
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

// TestBatchedServerBitIdentical is the determinism contract of
// docs/BATCHING.md over real TCP: K concurrent LoRA clients served
// through batched kernel invocations produce bit-identical per-step
// losses to the same K clients served serially, including a member
// with a different LoRA rank (per-row dispatch keeps each member's own
// factors) and an ineligible prefix-adapter client that silently takes
// the serial path on the same server.
func TestBatchedServerBitIdentical(t *testing.T) {
	const clients = 3
	const steps = 3

	// Serial and batched runs both execute at pool parallelism 4: the
	// contract holds at any worker count, not just the single-threaded
	// layout (the adapter-level pin sweeps 1/2/4/8).
	prev := tensor.Parallelism()
	tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)

	cfgFor := func(i int) client.Config {
		cfg := clientCfg(fmt.Sprintf("blk-%d", i))
		cfg.AdapterSeed = uint64(100 + i)
		if i == 1 {
			// Same targets, different rank: batchable together.
			lc := adapter.DefaultLoRA()
			lc.Rank = 4
			cfg.Adapter = adapter.LoRASpec(lc)
		}
		return cfg
	}
	prefixCfg := clientCfg("blk-prefix")
	prefixCfg.Adapter = adapter.PrefixSpec(adapter.PrefixConfig{PrefixLen: 4})

	// Serial ground truth: each client alone, one at a time, on an
	// unbatched server over the same seeded store.
	serial := make([][]float64, clients+1)
	_, serialAddr := newTestServer(t, true)
	runOne := func(addr string, cfg client.Config, seed uint64, barrier *stepBarrier) ([]float64, error) {
		c, err := client.Dial(addr, cfg)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		ids, targets := batchFor(cfg, seed)
		losses := make([]float64, 0, steps)
		for s := 0; s < steps; s++ {
			if barrier != nil {
				barrier.wait()
			}
			res, err := c.Step(ids, targets)
			if err != nil {
				return nil, err
			}
			losses = append(losses, res.Loss)
		}
		return losses, nil
	}
	for i := 0; i < clients; i++ {
		losses, err := runOne(serialAddr, cfgFor(i), uint64(50+i), nil)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = losses
	}
	pl, err := runOne(serialAddr, prefixCfg, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial[clients] = pl

	// Batched run: everyone concurrent, steps in lockstep so the LoRA
	// clients' requests land within one hold window.
	reg := obs.NewRegistry()
	addr := newBatchedServer(t, clients, reg)
	barrier := newStepBarrier(clients + 1)
	batched := make([][]float64, clients+1)
	errs := make([]error, clients+1)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batched[i], errs[i] = runOne(addr, cfgFor(i), uint64(50+i), barrier)
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		batched[clients], errs[clients] = runOne(addr, prefixCfg, 99, barrier)
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for i := range serial {
		for s := range serial[i] {
			if serial[i][s] != batched[i][s] {
				t.Errorf("client %d step %d: serial loss %v != batched %v",
					i, s, serial[i][s], batched[i][s])
			}
		}
	}

	// Batching must actually have happened: fewer invocations than the
	// LoRA clients' request count, with multi-member batches.
	formed := reg.Counter(obs.MetricBatchFormed).Value()
	if formed == 0 {
		t.Fatal("no batches formed")
	}
	size := reg.Histogram(obs.MetricBatchSize, nil).Snapshot()
	if mean := size.Sum / float64(size.Count); mean < 2 {
		t.Errorf("mean batch size %.2f, want ≥ 2 for lockstep clients", mean)
	}
	rows := reg.Counter(obs.MetricBatchRows).Value()
	if rows == 0 {
		t.Error("no batch rows recorded")
	}
}

// TestBatchedServerBaseIntegrity: batched serving builds throwaway
// multi-adapter bodies over shallow clones; the shared base must stay
// bit-identical afterwards.
func TestBatchedServerBaseIntegrity(t *testing.T) {
	store, err := share.NewStore(tensor.NewRNG(weightSeed), testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Store:    store,
		OnDemand: true,
		Batch:    sched.BatchPolicy{MaxSize: 4, MaxHold: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := clientCfg(fmt.Sprintf("integ-%d", i))
			cfg.AdapterSeed = uint64(200 + i)
			c, err := client.Dial(l.Addr().String(), cfg)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			ids, targets := batchFor(cfg, uint64(60+i))
			for s := 0; s < 3; s++ {
				if _, err := c.Step(ids, targets); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := store.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchRequiresOnDemand: the batched executor runs the on-demand
// protocol; configuring batching with activation preservation is a
// construction-time error, not a silent fallback.
func TestBatchRequiresOnDemand(t *testing.T) {
	store, err := share.NewStore(tensor.NewRNG(weightSeed), testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Store: store, Batch: sched.BatchPolicy{MaxSize: 4}}); err == nil {
		t.Fatal("batching without OnDemand accepted")
	}
	if _, err := New(Config{Store: store, OnDemand: true, Batch: sched.BatchPolicy{MaxSize: -2}}); err == nil {
		t.Fatal("invalid batch policy accepted")
	}
}
