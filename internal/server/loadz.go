package server

import (
	"net"
	"sync/atomic"

	"menos/internal/fleet"
	"menos/internal/obs"
)

// countingConn counts protocol bytes flowing over a client connection
// so the ledger can attribute wire traffic per tenant. Counters are
// atomics: the serving goroutine reads and writes frames while
// flushWire drains the deltas.
type countingConn struct {
	net.Conn
	tx atomic.Int64
	rx atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(int64(n))
	return n, err
}

// flushWire drains the connection's byte counters into the session's
// ledger row. Called once per message-loop turn and at teardown; the
// first flush after handshake attributes the handshake frames to the
// client too.
func (s *Server) flushWire(sess *session, conn *countingConn) {
	if s.ledger == nil {
		return
	}
	tx := conn.tx.Swap(0)
	rx := conn.rx.Swap(0)
	if tx != 0 || rx != 0 {
		s.ledger.AddWire(sess.id, tx, rx)
	}
}

// Ledger exposes the per-tenant accounting plane (nil when the server
// runs without metrics).
func (s *Server) Ledger() *obs.Ledger { return s.ledger }

// LoadSnapshot assembles the /loadz wire document: the same ServerLoad
// shape a fleet Placer consumes, hand-assembled by the simulator and
// here produced by the live serving plane, plus the per-client ledger.
// Wire it to the metrics mux with obs.WithLoadz:
//
//	obs.Handler(reg, tracer, obs.WithLoadz(func() any { return srv.LoadSnapshot() }))
func (s *Server) LoadSnapshot() fleet.LoadSnapshot {
	var committed int64
	s.mu.Lock()
	clients := len(s.sessions)
	for _, sess := range s.sessions {
		// Committed transient demand is the largest single grant the
		// session can request (the re-forward+backward peak dominates).
		d := sess.demands.BackwardBytes
		if sess.demands.ForwardBytes > d {
			d = sess.demands.ForwardBytes
		}
		committed += d
	}
	s.mu.Unlock()
	// UsedBytes mirrors what the simulator reports: device residency
	// (base model and per-owner allocations) plus everything the
	// scheduler currently holds out of its budget (grants in flight and
	// persistent reservations).
	used := s.device.Used() + (s.scheduler.Total() - s.scheduler.Available())
	return fleet.LoadSnapshot{
		AtSeconds: s.clock.Now().Seconds(),
		Server: fleet.ServerLoad{
			ID:             s.cfg.ServerID,
			Clients:        clients,
			QueueDepth:     s.scheduler.QueueDepth(),
			UsedBytes:      used,
			Admission:      fleet.AdmissionState(s.scheduler.AdmissionState()),
			CommittedBytes: committed,
			CapacityBytes:  s.device.Capacity(),
			Models:         []string{s.store.Config().Name},
		},
		Clients: s.ledger.Snapshot(),
	}
}
