package server

import (
	"net"
	"testing"
	"time"

	"menos/internal/client"
	"menos/internal/obs"
	"menos/internal/share"
	"menos/internal/tensor"
)

// TestMetricsOverRealTCPRun drives a real client over TCP against an
// instrumented server and checks the telemetry a scrape would see.
func TestMetricsOverRealTCPRun(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.NewWallClock())
	store, err := share.NewStore(tensor.NewRNG(weightSeed), testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, OnDemand: true, Metrics: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	clientReg := obs.NewRegistry()
	ccfg := clientCfg("metered")
	ccfg.Metrics = clientReg
	c, err := client.Dial(l.Addr().String(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := batchFor(ccfg, 3)
	const steps = 3
	for i := 0; i < steps; i++ {
		if _, err := c.Step(ids, targets); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	if v := reg.Counter(obs.MetricServerAdmitted).Value(); v != 1 {
		t.Errorf("admitted = %d, want 1", v)
	}
	if v := reg.Counter(obs.MetricServerIterations).Value(); v != steps {
		t.Errorf("iterations counter = %d, want %d", v, steps)
	}
	st := srv.Stats()
	if st.Iterations != steps {
		t.Errorf("Stats().Iterations = %d, want %d", st.Iterations, steps)
	}
	if v := reg.Counter(obs.MetricSchedGranted).Value() + reg.Counter(obs.MetricSchedBackfilled).Value(); v < 2*steps {
		t.Errorf("scheduler grants = %d, want >= %d (forward+backward per step)", v, 2*steps)
	}
	if v := reg.Counter(obs.MetricGPUAllocOps).Value(); v == 0 {
		t.Error("no GPU allocations counted")
	}
	// The active-clients gauge must have returned to zero; closing the
	// connection tears the session down asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Gauge(obs.MetricServerActiveClients).Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("active clients gauge stuck at %d", reg.Gauge(obs.MetricServerActiveClients).Value())
		}
		time.Sleep(time.Millisecond)
	}

	// Server spans: admission plus compute/sched segments per step.
	totals := tracer.CatTotals()
	if totals["compute"] <= 0 {
		t.Errorf("no compute span time recorded: %v", totals)
	}
	if totals["sched"] <= 0 {
		t.Errorf("no sched span time recorded: %v", totals)
	}
	var admits int
	for _, s := range tracer.Spans() {
		if s.Cat == "admission" {
			admits++
			if s.Track != "metered" {
				t.Errorf("admission span on track %q, want client id", s.Track)
			}
		}
	}
	if admits != 1 {
		t.Errorf("admission spans = %d, want 1", admits)
	}

	// Client-side metrics saw the same iterations.
	if v := clientReg.Counter(obs.MetricClientIterations).Value(); v != steps {
		t.Errorf("client iterations counter = %d, want %d", v, steps)
	}
}
