// Package server implements the real (functional-plane) Menos server:
// it accepts split fine-tuning clients over any net.Listener, shares
// one base model across all of them through a share.Store, profiles
// each client's memory demands on arrival, and runs every forward and
// backward under the Algorithm-2 scheduler with on-demand memory
// allocation — Algorithm 1's serving loop, executing real tensor math.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"menos/internal/batch"
	"menos/internal/checkpoint"
	"menos/internal/fleet"
	"menos/internal/gpu"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/obs"
	"menos/internal/profile"
	"menos/internal/quant"
	"menos/internal/sched"
	"menos/internal/share"
	"menos/internal/split"
	"menos/internal/tensor"
	"menos/internal/trace"
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Menos server.
type Config struct {
	// Store holds the shared base model (required).
	Store *share.Store
	// GPU is the simulated device whose budget the scheduler manages.
	// Defaults to a V100. Persistent components are charged to it on
	// startup and per client.
	GPU *gpu.Device
	// SchedPolicy is the scheduler discipline (default FCFS+backfill).
	SchedPolicy sched.Policy
	// OnDemand enables Fig. 3(d)'s policy: no-grad first forward,
	// release while waiting, re-forward on backward. When false the
	// server preserves activations between forward and backward
	// (Fig. 3(b)), the ablation baseline.
	OnDemand bool
	// MaxClients caps concurrently admitted clients (0 = unlimited).
	// Admission beyond the cap is rejected at handshake with a clear
	// reason rather than degrading everyone.
	MaxClients int
	// SLO, when enabled, activates adaptive admission control on the
	// scheduler (docs/ADMISSION.md): the sliding-window p99 grant wait
	// is held near SLO.TargetP99 by throttling backfill and, under
	// sustained overload, shedding requests with a retryable
	// protocol-level rejection. The zero value keeps the scheduler's
	// plain Algorithm-2 behaviour.
	SLO sched.SLO
	// Logger receives serving events; nil silences logging.
	Logger *log.Logger
	// Metrics, when set, instruments the server, its scheduler and its
	// GPU device against the registry (see docs/OBSERVABILITY.md for
	// the metric catalog). Nil disables metrics at zero cost.
	Metrics *obs.Registry
	// Tracer, when set, records per-iteration spans (admission, queue
	// wait, forward/backward compute, release) on a wall clock. Nil
	// disables tracing. When the client negotiates trace context
	// (split.FeatureTraceContext) the server parents these spans under
	// the client's iteration trace IDs.
	Tracer *obs.Tracer
	// Flight, when set, snapshots the recent trace window and metrics
	// to disk on overload anomalies: admission-state transitions,
	// sheds, and memory rejections. Nil disables the recorder.
	Flight *obs.FlightRecorder
	// Batch, when enabled (MaxSize > 1), coalesces compatible
	// forward/backward requests from concurrent LoRA clients into one
	// batched kernel invocation with per-row adapter dispatch
	// (docs/BATCHING.md). Requires OnDemand: the batched executor runs
	// the no-grad-forward / re-forward-backward protocol. The zero
	// value serves every request serially.
	Batch sched.BatchPolicy
	// ServerID is this server's fleet identity, echoed in /loadz
	// (LoadSnapshot). A single-server deployment can leave it 0.
	ServerID int
	// TenantCap bounds per-client accounting cardinality: ledger
	// accounts and labeled metric series beyond it aggregate into the
	// "other" series. 0 means obs.DefaultVecCap.
	TenantCap int
	// WireCodec compresses activation/gradient payloads this server
	// sends (docs/WIRE.md). CodecFP32 (the zero value) disables the
	// feature entirely: split.FeatureActivationCompression is never
	// acked and every frame stays byte-identical to a pre-compression
	// server. Any other codec acks the feature when a client offers it;
	// each peer compresses what it sends with its own codec, and the
	// Packed header carries the codec per payload.
	WireCodec quant.Codec
}

// Server is a running Menos server.
type Server struct {
	cfg       Config
	store     *share.Store
	device    *gpu.Device
	scheduler *sched.Scheduler
	// clock is the server's telemetry timebase (wall time since
	// construction); /loadz timestamps read it.
	clock obs.Clock
	// ledger is the per-tenant accounting plane (nil when metrics are
	// disabled). The scheduler feeds it byte holdings and grant waits;
	// the serving loop feeds it compute, iterations and wire bytes.
	ledger *obs.Ledger
	// engine forms batched kernel invocations (nil when Config.Batch is
	// disabled); batchSeq names them for the scheduler.
	engine   *batch.Engine
	batchSeq atomic.Int64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	sessions  map[string]*session
	// pendingMig holds migration orders accepted by the admin plane,
	// keyed by client; the serving goroutine claims its order at the
	// next ForwardReq boundary.
	pendingMig map[string]fleet.MigrateOrder
	// staged holds session snapshots parked here by a source server
	// (POST /admin/prepare), keyed by resume token, until the migrated
	// client redials.
	staged map[uint64]*stagedSession
	closed bool
	wg     sync.WaitGroup

	// stats are atomics rather than a second mutex: serving goroutines
	// update them while holding no locks, so there is no lock ordering
	// to get wrong between stats, s.mu and the scheduler's internal
	// lock (and `go test -race` keeps it that way).
	stats struct {
		clientsServed atomic.Int64
		iterations    atomic.Int64
		schedWaitNs   atomic.Int64
		computeNs     atomic.Int64
	}

	m serverMetrics
}

// serverMetrics are the serving plane's telemetry handles; the zero
// value (nil handles) is valid and free.
type serverMetrics struct {
	admitted          *obs.Counter
	rejected          *obs.Counter
	iterations        *obs.Counter
	compute           *obs.Histogram
	schedWait         *obs.Histogram
	active            *obs.Gauge
	migrationsOut     *obs.Counter
	migrationsIn      *obs.Counter
	migrationsAborted *obs.Counter

	// Wire transport plane (docs/WIRE.md): bytes of compressed payloads
	// this server sent vs the fp32 bytes they replaced, plus codec time.
	wireCompressed *obs.Counter
	wireRaw        *obs.Counter
	codecSeconds   *obs.Histogram
}

// New creates a server over the shared store. The store's base
// parameters are charged against the GPU budget immediately — the
// paper's "preloaded into the GPU memory in advance".
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: nil store")
	}
	if cfg.GPU == nil {
		cfg.GPU = gpu.NewDevice(gpu.V100())
	}
	if cfg.SchedPolicy == 0 {
		cfg.SchedPolicy = sched.PolicyFCFSBackfill
	}
	// Instrument before the preload so the base-model charge shows up
	// in the alloc counters, not just the seeded used gauge.
	cfg.GPU.Instrument(cfg.Metrics)
	if _, err := cfg.GPU.Alloc("base-model", cfg.Store.BaseParamBytes()); err != nil {
		return nil, fmt.Errorf("server: loading base model: %w", err)
	}
	s := &Server{
		cfg:        cfg,
		store:      cfg.Store,
		device:     cfg.GPU,
		scheduler:  sched.New(cfg.GPU.Available(), cfg.SchedPolicy),
		clock:      obs.NewWallClock(),
		listeners:  make(map[net.Listener]struct{}),
		conns:      make(map[net.Conn]struct{}),
		sessions:   make(map[string]*session),
		pendingMig: make(map[string]fleet.MigrateOrder),
		staged:     make(map[uint64]*stagedSession),
	}
	if cfg.Metrics != nil {
		s.scheduler.Instrument(cfg.Metrics, s.clock)
		// Per-tenant accounting rides the same clock; the scheduler is
		// the single source of byte-second holdings (grants and
		// persistent reservations), the serving loop adds compute,
		// iterations and wire bytes.
		s.ledger = obs.NewLedger(obs.LedgerConfig{Clock: s.clock, MaxClients: cfg.TenantCap})
		s.ledger.Instrument(cfg.Metrics)
		s.scheduler.SetLedger(s.ledger)
	}
	if cfg.Batch.Enabled() {
		if !cfg.OnDemand {
			return nil, errors.New("server: batching requires OnDemand serving")
		}
		pol := cfg.Batch.WithDefaults()
		engine, err := batch.New(batch.Config{
			Policy:   pol,
			Exec:     s.execBatch,
			MaxBytes: s.scheduler.Schedulable,
			Metrics:  batch.NewMetrics(cfg.Metrics, s.ledger, pol.MaxSize),
		})
		if err != nil {
			return nil, fmt.Errorf("server: batch engine: %w", err)
		}
		s.engine = engine
	} else if err := cfg.Batch.Validate(); err != nil {
		return nil, fmt.Errorf("server: batch policy: %w", err)
	}
	if cfg.SLO.Enabled() {
		if err := s.scheduler.EnableAdmission(cfg.SLO, obs.NewWallClock()); err != nil {
			return nil, fmt.Errorf("server: admission control: %w", err)
		}
		if cfg.Flight != nil {
			// Snapshot on every admission-state change. TriggerAsync
			// queues off the scheduler mutex the hook runs under.
			s.scheduler.SetAdmissionHook(func(from, to sched.AdmissionState) {
				cfg.Flight.TriggerAsync(obs.FlightReasonAdmission)
			})
		}
	}
	if cfg.Metrics != nil {
		s.m = serverMetrics{
			admitted:   cfg.Metrics.Counter(obs.MetricServerAdmitted, "clients admitted at handshake"),
			rejected:   cfg.Metrics.Counter(obs.MetricServerRejected, "clients rejected at handshake"),
			iterations: cfg.Metrics.Counter(obs.MetricServerIterations, "fine-tuning iterations completed"),
			compute:    cfg.Metrics.Histogram(obs.MetricServerComputeSeconds, obs.DurationBuckets(), "server-side compute per request"),
			schedWait:  cfg.Metrics.Histogram(obs.MetricServerWaitSeconds, obs.DurationBuckets(), "scheduler grant wait per request"),
			active:     cfg.Metrics.Gauge(obs.MetricServerActiveClients, "clients currently connected and admitted"),

			migrationsOut:     cfg.Metrics.Counter(obs.MetricServerMigrationsOut, "sessions snapshotted and redirected to another server"),
			migrationsIn:      cfg.Metrics.Counter(obs.MetricServerMigrationsIn, "sessions resumed here from a staged snapshot"),
			migrationsAborted: cfg.Metrics.Counter(obs.MetricServerMigrationsAborted, "migration orders that failed mid-flight"),

			wireCompressed: cfg.Metrics.Counter(obs.MetricWireCompressedBytes, "on-wire bytes of compressed activation/gradient payloads sent"),
			wireRaw:        cfg.Metrics.Counter(obs.MetricWireRawBytes, "fp32 bytes the compressed payloads replaced"),
			codecSeconds:   cfg.Metrics.Histogram(obs.MetricWireCodecSeconds, obs.DurationBuckets(), "time quantizing/dequantizing wire payloads"),
		}
		cfg.Metrics.Gauge(obs.MetricTensorPoolWorkers, "tensor worker-pool parallelism").Set(int64(tensor.Parallelism()))
	}
	return s, nil
}

// Scheduler exposes the scheduler for stats inspection.
func (s *Server) Scheduler() *sched.Scheduler { return s.scheduler }

// Device exposes the accounting device.
func (s *Server) Device() *gpu.Device { return s.device }

// Stats summarizes serving activity.
type Stats struct {
	ClientsServed int64
	Iterations    int64
	AvgSchedWait  time.Duration
	AvgCompute    time.Duration
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	st := Stats{
		ClientsServed: s.stats.clientsServed.Load(),
		Iterations:    s.stats.iterations.Load(),
	}
	if st.Iterations > 0 {
		st.AvgSchedWait = time.Duration(s.stats.schedWaitNs.Load()) / time.Duration(st.Iterations)
		st.AvgCompute = time.Duration(s.stats.computeNs.Load()) / time.Duration(st.Iterations)
	}
	return st
}

// Serve accepts clients on l until Close. It always returns a non-nil
// error; after Close the error is ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for
// serving goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		_ = l.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	// Flush forming batches before the scheduler dies: a pending group
	// still needs a (failing or succeeding) grant to release its
	// members' serving goroutines.
	if s.engine != nil {
		s.engine.Close()
	}
	s.scheduler.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// session is one client's serving state (a "serving process" S_i).
type session struct {
	id        string
	inst      *share.Instance
	body      *model.BodySection
	params    []nn.Param
	optimizer nn.Optimizer
	demands   profile.Result
	batch     int
	seq       int
	// features is the negotiated extension set (the intersection of
	// the client's Hello offer and what this server accepts).
	features uint64

	// cachedInput retains x_c between the first forward and the
	// backward re-forward ("we just need to cache the forward
	// activations for the re-forward computation, which is
	// negligible").
	cachedInput *tensor.Tensor
	cachedIter  int
	cachedBatch int
	cachedSeq   int

	// preserved holds the activation cache between forward and
	// backward when OnDemand is disabled (Fig. 3(b) ablation).
	preserved *model.BodyCache

	// decode holds an open incremental-inference session; its KV bytes
	// are reserved from the scheduler until DecodeClose.
	decode *model.BodyDecodeState
}

// handleConn runs one client's full lifecycle.
func (s *Server) handleConn(rawConn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, rawConn)
		s.mu.Unlock()
		_ = rawConn.Close()
	}()
	// All protocol IO goes through the counting wrapper so the ledger
	// can attribute wire bytes (handshake included) to the client.
	conn := &countingConn{Conn: rawConn}

	sess, err := s.handshake(conn)
	if err != nil {
		s.logf("handshake failed: %v", err)
		return
	}
	s.mu.Lock()
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	defer s.teardown(sess)
	defer s.flushWire(sess, conn)
	s.logf("client %q admitted (fwd=%d bwd=%d bytes)",
		sess.id, sess.demands.ForwardBytes, sess.demands.BackwardBytes)

	for {
		s.flushWire(sess, conn)
		msg, err := split.ReadMessage(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("client %q: read: %v", sess.id, err)
			}
			return
		}
		switch m := msg.(type) {
		case *split.ForwardReq:
			// A pending migration order executes here, at the clean
			// iteration boundary: the previous backward has been applied
			// and this forward has not been served, so the client can
			// replay it against the target without losing an iteration.
			if ord, ok := s.takePendingMigration(sess); ok {
				// The displaced ForwardReq's trace ID is the iteration
				// that will replay on the destination server, so tagging
				// the source-side handoff span with it stitches both
				// processes' spans under one IterTraceID in a merged
				// fleet trace (fleetd trace federation).
				mig := s.cfg.Tracer.BeginT(sess.id, "migrate:out", "migrate", m.TraceID)
				err := s.executeMigration(conn, sess, ord)
				mig.End()
				if err != nil {
					s.m.migrationsAborted.Inc()
					s.logf("client %q: migration to %s aborted: %v", sess.id, ord.TargetAddr, err)
					// Fall through: the session keeps serving here.
				} else {
					return
				}
			}
			if err := s.serveForward(conn, sess, m); err != nil {
				var ov *sched.OverloadError
				if errors.As(err, &ov) {
					// Admission shed: transient, the session stays up and
					// the client retries after the hinted backoff.
					s.logf("client %q: forward shed (%v)", sess.id, ov.RetryAfter)
					s.cfg.Flight.TriggerAsync(obs.FlightReasonShed)
					s.sendRetryable(conn, ov)
					continue
				}
				s.logf("client %q: forward: %v", sess.id, err)
				s.sendError(conn, err)
				return
			}
		case *split.BackwardReq:
			if err := s.serveBackward(conn, sess, m); err != nil {
				var ov *sched.OverloadError
				if errors.As(err, &ov) {
					s.logf("client %q: backward shed (%v)", sess.id, ov.RetryAfter)
					s.cfg.Flight.TriggerAsync(obs.FlightReasonShed)
					s.sendRetryable(conn, ov)
					continue
				}
				s.logf("client %q: backward: %v", sess.id, err)
				s.sendError(conn, err)
				return
			}
		case *split.DecodeOpen:
			if err := s.serveDecodeOpen(conn, sess, m); err != nil {
				s.logf("client %q: decode open: %v", sess.id, err)
				s.sendError(conn, err)
				return
			}
		case *split.DecodeReq:
			if err := s.serveDecodeStep(conn, sess, m); err != nil {
				s.logf("client %q: decode: %v", sess.id, err)
				s.sendError(conn, err)
				return
			}
		case *split.DecodeClose:
			s.closeDecode(sess)
		case *split.Bye:
			s.logf("client %q: bye", sess.id)
			return
		default:
			s.sendError(conn, fmt.Errorf("unexpected message %v", msg.MsgType()))
			return
		}
	}
}

// handshake admits a client: validates the Hello, builds the instance,
// attaches the adapter, charges persistent memory, and profiles.
func (s *Server) handshake(conn net.Conn) (*session, error) {
	msg, err := split.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("read hello: %w", err)
	}
	hello, ok := msg.(*split.Hello)
	if !ok {
		return nil, fmt.Errorf("expected hello, got %v", msg.MsgType())
	}
	admitSpan := s.cfg.Tracer.Begin(hello.ClientID, "admit", "admission")
	reject := func(reason string) (*session, error) {
		s.m.rejected.Inc()
		admitSpan.End()
		_ = split.WriteMessage(conn, &split.HelloAck{OK: false, Reason: reason})
		return nil, fmt.Errorf("rejected %q: %s", hello.ClientID, reason)
	}
	if hello.ClientID == "" {
		return reject("missing client id")
	}
	if hello.ModelName != s.store.Config().Name {
		return reject(fmt.Sprintf("model %q not hosted (serving %q)", hello.ModelName, s.store.Config().Name))
	}
	if hello.Batch <= 0 || hello.Seq <= 0 || hello.Seq > s.store.Config().MaxSeq {
		return reject(fmt.Sprintf("bad geometry batch=%d seq=%d", hello.Batch, hello.Seq))
	}
	if err := hello.Adapter.Validate(); err != nil {
		return reject(err.Error())
	}

	if s.cfg.MaxClients > 0 && s.store.ActiveInstances() >= s.cfg.MaxClients {
		return reject(fmt.Sprintf("server at capacity (%d clients)", s.cfg.MaxClients))
	}
	// Under sustained overload the controller sheds new clients before
	// they are profiled or charged — a retryable rejection, unlike the
	// hard configuration rejections above.
	if s.scheduler.AdmissionState() == sched.StateShedding {
		s.m.rejected.Inc()
		s.ledger.Shed(hello.ClientID)
		admitSpan.End()
		s.cfg.Flight.TriggerAsync(obs.FlightReasonShed)
		retry := s.retryAfter()
		_ = split.WriteMessage(conn, &split.HelloAck{
			OK:           false,
			Reason:       "server overloaded",
			Retryable:    true,
			RetryAfterMs: retry.Milliseconds(),
		})
		return nil, fmt.Errorf("shed %q: overloaded (retry after %v)", hello.ClientID, retry)
	}
	inst, err := s.store.NewInstance(hello.ClientID, hello.Cut)
	if err != nil {
		return reject(err.Error())
	}
	cleanup := func() { _ = inst.Release() }

	if _, err := inst.AttachAdapter(tensor.NewRNG(hello.AdapterSeed), hello.Adapter); err != nil {
		cleanup()
		return reject(err.Error())
	}
	// Feature negotiation: accept the intersection of the client's
	// offer and what this server supports. Trace context is only
	// useful (and only acked) when a tracer is wired; migration is
	// always supported (the admin plane may simply never order one);
	// compressed payloads are acked only when this server is itself
	// configured to send them (-wire-compress).
	var features uint64
	if s.cfg.Tracer != nil {
		features = hello.Features & split.FeatureTraceContext
	}
	features |= hello.Features & split.FeatureMigration
	if s.cfg.WireCodec != quant.CodecFP32 {
		features |= hello.Features & split.FeatureActivationCompression
	}

	// A resuming redial must find its staged snapshot before any state
	// is built; claiming it early also keeps a bad token from leaking
	// an instance.
	var staged *stagedSession
	if hello.ResumeToken != 0 {
		staged = s.takeStaged(hello.ResumeToken)
		if staged == nil {
			cleanup()
			return reject(fmt.Sprintf("unknown resume token %d", hello.ResumeToken))
		}
		if staged.clientID != hello.ClientID {
			cleanup()
			return reject(fmt.Sprintf("resume token %d was staged for another client", hello.ResumeToken))
		}
	}
	sess := &session{
		id:       hello.ClientID,
		inst:     inst,
		body:     inst.Body(),
		params:   inst.AdapterParams(),
		batch:    hello.Batch,
		seq:      hello.Seq,
		features: features,
	}
	switch hello.Optimizer.Kind {
	case "", "adam":
		lr := hello.Optimizer.LR
		if lr == 0 {
			lr = 1e-3
		}
		sess.optimizer = nn.NewAdam(lr)
	case "sgd":
		sess.optimizer = nn.NewSGD(hello.Optimizer.LR, 0)
	default:
		cleanup()
		return reject(fmt.Sprintf("unknown optimizer %q", hello.Optimizer.Kind))
	}

	// Reserve the client's persistent footprint (adapter params,
	// grads, Adam moments, process context) outside the request
	// queue. The reservation shrinks the schedulable pool for the
	// client's lifetime.
	persistent := 4*inst.Adapter().ParamBytes() + contextOverheadBytes
	if err := s.scheduler.Reserve("persist:"+hello.ClientID, persistent); err != nil {
		cleanup()
		return reject(fmt.Sprintf("insufficient GPU memory for client state: %v", err))
	}
	releaseReservation := func() { s.scheduler.Complete("persist:" + hello.ClientID) }

	// Profiling phase (§3.3): random inputs through fwd/bwd.
	demands, err := profile.MeasureBody(sess.body, sess.params, hello.Batch, hello.Seq,
		s.store.Config().Dim, hello.AdapterSeed)
	if err != nil {
		releaseReservation()
		cleanup()
		return reject(fmt.Sprintf("profiling failed: %v", err))
	}
	sess.demands = demands
	// Scheduler principle 1: a demand that could never be granted is
	// rejected up front rather than deadlocking the client later.
	if demands.BackwardBytes > s.scheduler.Available() {
		releaseReservation()
		cleanup()
		s.cfg.Flight.TriggerAsync(obs.FlightReasonOOM)
		return reject(fmt.Sprintf("backward demand %d exceeds schedulable memory %d",
			demands.BackwardBytes, s.scheduler.Available()+persistent))
	}

	// Restore a migrated session after profiling: MeasureBody leaves
	// zeroed gradients behind, so the snapshot's values, grads,
	// optimizer slots and step count land on a clean slate and the
	// client resumes bit-exactly where the source server left off.
	if staged != nil {
		// Untraced span (the replayed iteration's trace ID arrives only
		// with the client's next ForwardReq); the destination side of a
		// migration is still visible on the session's track.
		mig := s.cfg.Tracer.Begin(sess.id, "migrate:in", "migrate")
		if err := checkpoint.DecodeSession(staged.data, sess.params, sess.optimizer); err != nil {
			releaseReservation()
			cleanup()
			return reject(fmt.Sprintf("resume restore failed: %v", err))
		}
		mig.End()
		s.m.migrationsIn.Inc()
		s.logf("client %q: session resumed from snapshot (%d bytes)", sess.id, len(staged.data))
	}

	if err := split.WriteMessage(conn, &split.HelloAck{
		OK:            true,
		ForwardBytes:  demands.ForwardBytes,
		BackwardBytes: demands.BackwardBytes,
		Features:      features,
	}); err != nil {
		releaseReservation()
		cleanup()
		return nil, fmt.Errorf("write ack: %w", err)
	}
	s.stats.clientsServed.Add(1)
	s.m.admitted.Inc()
	s.m.active.Add(1)
	admitSpan.End()
	return sess, nil
}

// contextOverheadBytes mirrors memmodel.ContextOverheadBytes for the
// real runtime's accounting device.
const contextOverheadBytes = 128 << 20

func (s *Server) teardown(sess *session) {
	s.mu.Lock()
	if s.sessions[sess.id] == sess {
		delete(s.sessions, sess.id)
		// An unexecuted migration order dies with the session.
		delete(s.pendingMig, sess.id)
	}
	s.mu.Unlock()
	s.m.active.Add(-1)
	s.closeDecode(sess)
	s.scheduler.Complete(sess.id)
	s.scheduler.Complete("persist:" + sess.id)
	if err := sess.inst.Release(); err != nil && !errors.Is(err, share.ErrReleased) {
		s.logf("client %q: release: %v", sess.id, err)
	}
}

// acquire blocks until the scheduler grants bytes to the session.
// traceID (0 = untraced) stamps the wait span and the grant-wait
// exemplar, tying a tail-latency observation back to the client
// iteration that suffered it.
func (s *Server) acquire(sess *session, kind sched.RequestKind, bytes int64, traceID uint64) (time.Duration, error) {
	sp := s.cfg.Tracer.BeginT(sess.id, "wait:"+kind.String(), "sched", traceID)
	start := time.Now()
	granted := make(chan struct{}, 1) // may fire synchronously inside Submit
	if err := s.scheduler.Submit(sess.id, kind, bytes, func() { granted <- struct{}{} }); err != nil {
		if errors.Is(err, sched.ErrNeverFits) {
			s.cfg.Flight.TriggerAsync(obs.FlightReasonOOM)
		}
		return 0, err
	}
	<-granted
	sp.End()
	wait := time.Since(start)
	s.m.schedWait.ObserveExemplar(wait.Seconds(), traceID)
	return wait, nil
}

// decodeWire resolves a request payload that may be plain or packed.
// A packed payload on a session that never negotiated compression is a
// protocol violation rather than something to decode on faith.
func (s *Server) decodeWire(sess *session, plain *tensor.Tensor, packed *quant.Packed) (*tensor.Tensor, error) {
	if packed != nil && sess.features&split.FeatureActivationCompression == 0 {
		return nil, errors.New("compressed payload without negotiation")
	}
	if packed == nil {
		return plain, nil
	}
	t0 := time.Now()
	x, err := split.Payload(plain, packed)
	if err != nil {
		return nil, fmt.Errorf("unpack payload: %w", err)
	}
	s.m.codecSeconds.Observe(time.Since(t0).Seconds())
	return x, nil
}

// encodeWire quantizes a response payload with the server's configured
// codec when the session negotiated compression; otherwise the tensor
// passes through and the frame stays byte-identical to a legacy
// server's.
func (s *Server) encodeWire(sess *session, x *tensor.Tensor) (*tensor.Tensor, *quant.Packed, error) {
	if sess.features&split.FeatureActivationCompression == 0 || s.cfg.WireCodec == quant.CodecFP32 {
		return x, nil, nil
	}
	t0 := time.Now()
	p, err := quant.Pack(x, s.cfg.WireCodec)
	if err != nil {
		return nil, nil, fmt.Errorf("pack payload: %w", err)
	}
	s.m.codecSeconds.Observe(time.Since(t0).Seconds())
	s.m.wireCompressed.Add(int64(p.WireBytes()))
	s.m.wireRaw.Add(int64(4 * len(x.Data())))
	return nil, p, nil
}

// serveForward is Algorithm 1, lines 4-8.
func (s *Server) serveForward(conn net.Conn, sess *session, req *split.ForwardReq) error {
	// Decode a possibly-compressed x_c up front; everything downstream
	// (the batched path included) sees a plain tensor.
	x, err := s.decodeWire(sess, req.Activations, req.Packed)
	if err != nil {
		return fmt.Errorf("forward: %w", err)
	}
	req.Activations, req.Packed = x, nil
	if req.Activations == nil {
		return errors.New("forward request without activations")
	}
	// Geometry at or below the profiled one is memory-safe (demands
	// shrink monotonically); anything larger would invalidate the
	// profiled M_f/M_b and risk an OOM, so it is rejected.
	if req.Batch <= 0 || req.Seq <= 0 || req.Batch > sess.batch || req.Seq > sess.seq {
		return fmt.Errorf("geometry (%d,%d) exceeds profiled (%d,%d)",
			req.Batch, req.Seq, sess.batch, sess.seq)
	}
	if la, ok := s.batchable(sess); ok {
		return s.serveForwardBatched(conn, sess, req, batchKey(sess, la, sched.KindForward, req.Seq))
	}
	wait, err := s.acquire(sess, sched.KindForward, sess.demands.ForwardBytes, req.TraceID)
	if err != nil {
		return err
	}
	compSpan := s.cfg.Tracer.BeginT(sess.id, "forward", "compute", req.TraceID)
	compStart := time.Now()

	var resp *tensor.Tensor
	if s.cfg.OnDemand {
		// Fig. 3(d): no-grad forward; only x_c is cached for the
		// re-forward.
		xs, _, err := sess.body.Forward(req.Activations, req.Batch, req.Seq, false)
		if err != nil {
			s.scheduler.Complete(sess.id)
			return err
		}
		sess.cachedInput = req.Activations
		sess.cachedIter = req.Iter
		sess.cachedBatch = req.Batch
		sess.cachedSeq = req.Seq
		resp = xs
	} else {
		// Fig. 3(b): grad-enabled forward, activations preserved
		// until the backward arrives.
		xs, cache, err := sess.body.Forward(req.Activations, req.Batch, req.Seq, true)
		if err != nil {
			s.scheduler.Complete(sess.id)
			return err
		}
		sess.preserved = cache
		sess.cachedIter = req.Iter
		resp = xs
	}

	comp := time.Since(compStart)
	compSpan.End()
	if s.cfg.OnDemand {
		// Release GPU memory before waiting for gradients.
		rel := s.cfg.Tracer.BeginT(sess.id, "release", "release", req.TraceID)
		s.scheduler.Complete(sess.id)
		rel.End()
	}
	s.recordIterationHalf(sess, wait, comp, req.TraceID)
	plain, packed, err := s.encodeWire(sess, resp)
	if err != nil {
		return fmt.Errorf("forward: %w", err)
	}
	return split.WriteMessage(conn, &split.ForwardResp{Iter: req.Iter, Activations: plain, Packed: packed, TraceID: sess.echoTrace(req.TraceID)})
}

// serveBackward is Algorithm 1, lines 9-14.
func (s *Server) serveBackward(conn net.Conn, sess *session, req *split.BackwardReq) error {
	g, err := s.decodeWire(sess, req.Gradients, req.Packed)
	if err != nil {
		return fmt.Errorf("backward: %w", err)
	}
	req.Gradients, req.Packed = g, nil
	if req.Gradients == nil {
		return errors.New("backward request without gradients")
	}
	if req.Iter != sess.cachedIter {
		return fmt.Errorf("backward for iteration %d, but forward was %d", req.Iter, sess.cachedIter)
	}
	if la, ok := s.batchable(sess); ok {
		return s.serveBackwardBatched(conn, sess, req, batchKey(sess, la, sched.KindBackward, sess.cachedSeq))
	}

	var wait time.Duration
	var cache *model.BodyCache
	var compSpan *obs.SpanHandle
	compStart := time.Now()
	if s.cfg.OnDemand {
		if sess.cachedInput == nil {
			return errors.New("backward before forward")
		}
		wait, err = s.acquire(sess, sched.KindBackward, sess.demands.BackwardBytes, req.TraceID)
		if err != nil {
			return err
		}
		compSpan = s.cfg.Tracer.BeginT(sess.id, "backward", "compute", req.TraceID)
		compStart = time.Now()
		// Re-forward with gradient preparation.
		_, cache, err = sess.body.Forward(sess.cachedInput, sess.cachedBatch, sess.cachedSeq, true)
		if err != nil {
			s.scheduler.Complete(sess.id)
			return err
		}
		sess.cachedInput = nil
	} else {
		compSpan = s.cfg.Tracer.BeginT(sess.id, "backward", "compute", req.TraceID)
		if sess.preserved == nil {
			return errors.New("backward before forward")
		}
		cache = sess.preserved
		sess.preserved = nil
	}

	gs, err := sess.body.Backward(cache, req.Gradients)
	if err != nil {
		s.scheduler.Complete(sess.id)
		return err
	}
	// Optimize the server-side adapter φ_s (Algorithm 1, line 12).
	// Under gradient accumulation (Apply=false) the gradients keep
	// accumulating across micro-batches and the step is deferred.
	if req.Apply {
		if err := sess.optimizer.Step(sess.params); err != nil {
			s.scheduler.Complete(sess.id)
			return err
		}
		nn.ZeroGrads(sess.params)
	}
	comp := time.Since(compStart)
	compSpan.End()

	// Release GPU memory (both policies release after backward).
	rel := s.cfg.Tracer.BeginT(sess.id, "release", "release", req.TraceID)
	s.scheduler.Complete(sess.id)
	rel.End()
	s.recordIterationHalf(sess, wait, comp, req.TraceID)

	s.stats.iterations.Add(1)
	s.m.iterations.Inc()
	s.ledger.AddIteration(sess.id)
	plain, packed, err := s.encodeWire(sess, gs)
	if err != nil {
		return fmt.Errorf("backward: %w", err)
	}
	return split.WriteMessage(conn, &split.BackwardResp{Iter: req.Iter, Gradients: plain, Packed: packed, TraceID: sess.echoTrace(req.TraceID)})
}

// echoTrace returns the trace ID to stamp on a response: the request's
// own, but only when the session negotiated trace context (an
// un-negotiated peer must keep receiving byte-identical version-1
// frames).
func (sess *session) echoTrace(traceID uint64) uint64 {
	if sess.features&split.FeatureTraceContext == 0 {
		return 0
	}
	return traceID
}

func (s *Server) recordIterationHalf(sess *session, wait, comp time.Duration, traceID uint64) {
	s.stats.schedWaitNs.Add(int64(wait))
	s.stats.computeNs.Add(int64(comp))
	s.m.compute.ObserveExemplar(comp.Seconds(), traceID)
	s.ledger.AddCompute(sess.id, comp.Seconds())
}

func (s *Server) sendError(conn net.Conn, err error) {
	_ = split.WriteMessage(conn, &split.ErrorMsg{Reason: err.Error()})
}

// sendRetryable reports an overload shed without tearing the session
// down: the client keeps its connection and resubmits after the hint.
func (s *Server) sendRetryable(conn net.Conn, ov *sched.OverloadError) {
	_ = split.WriteMessage(conn, &split.ErrorMsg{
		Reason:       ov.Error(),
		Retryable:    true,
		RetryAfterMs: ov.RetryAfter.Milliseconds(),
	})
}

// retryAfter is the handshake-level backoff hint, from the configured
// SLO (falling back to the p99 target itself).
func (s *Server) retryAfter() time.Duration {
	if s.cfg.SLO.RetryAfter > 0 {
		return s.cfg.SLO.RetryAfter
	}
	return s.cfg.SLO.TargetP99
}

// Breakdown satisfies experiment harnesses that want a trace view of
// server activity.
func (s *Server) Breakdown() *trace.Breakdown {
	bd := &trace.Breakdown{}
	st := s.Stats()
	if st.Iterations > 0 {
		bd.Add(0, st.AvgCompute*time.Duration(st.Iterations), st.AvgSchedWait*time.Duration(st.Iterations))
	}
	return bd
}

// serveDecodeOpen starts an incremental-inference session: the KV
// cache for the whole session is reserved from the scheduler up front
// (the inference-time analogue of the profiled training demands), so a
// decode session can never OOM mid-stream.
func (s *Server) serveDecodeOpen(conn net.Conn, sess *session, req *split.DecodeOpen) error {
	reject := func(reason string) error {
		return split.WriteMessage(conn, &split.DecodeAck{OK: false, Reason: reason})
	}
	if sess.decode != nil {
		return reject("decode session already open")
	}
	if req.Capacity <= 0 || req.Capacity > s.store.Config().MaxSeq {
		return reject(fmt.Sprintf("capacity %d out of range (1..%d)",
			req.Capacity, s.store.Config().MaxSeq))
	}
	state, err := sess.body.NewDecodeState(req.Capacity, s.store.Config().Dim)
	if err != nil {
		return reject(err.Error())
	}
	if err := s.scheduler.Reserve("decode:"+sess.id, state.Bytes()); err != nil {
		return reject(fmt.Sprintf("insufficient GPU memory for KV cache: %v", err))
	}
	sess.decode = state
	s.logf("client %q: decode session open (%d positions, %d KV bytes)",
		sess.id, req.Capacity, state.Bytes())
	return split.WriteMessage(conn, &split.DecodeAck{OK: true, KVBytes: state.Bytes()})
}

// serveDecodeStep advances an open session by one position.
func (s *Server) serveDecodeStep(conn net.Conn, sess *session, req *split.DecodeReq) error {
	if sess.decode == nil {
		return errors.New("decode request without an open session")
	}
	if req.Activation == nil {
		return errors.New("decode request without activation")
	}
	if req.Pos != sess.decode.Len() {
		return fmt.Errorf("decode position %d, session is at %d", req.Pos, sess.decode.Len())
	}
	out, err := sess.body.DecodeStep(req.Activation, sess.decode)
	if err != nil {
		return err
	}
	return split.WriteMessage(conn, &split.DecodeResp{Pos: req.Pos, Activation: out})
}

// closeDecode releases an open session's KV reservation, if any.
func (s *Server) closeDecode(sess *session) {
	if sess.decode == nil {
		return
	}
	sess.decode = nil
	s.scheduler.Complete("decode:" + sess.id)
	s.logf("client %q: decode session closed", sess.id)
}
