package server

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"menos/internal/adapter"
	"menos/internal/client"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/share"
	"menos/internal/split"
	"menos/internal/tensor"
)

const weightSeed = 1234

func testModelCfg() model.Config { return model.OPTTiny() }

func newTestServer(t *testing.T, onDemand bool) (*Server, string) {
	t.Helper()
	store, err := share.NewStore(tensor.NewRNG(weightSeed), testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, OnDemand: onDemand})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, l.Addr().String()
}

func clientCfg(id string) client.Config {
	return client.Config{
		ClientID:    id,
		Model:       testModelCfg(),
		WeightSeed:  weightSeed,
		Cut:         1,
		Adapter:     adapter.LoRASpec(adapter.DefaultLoRA()),
		AdapterSeed: 99,
		LR:          5e-3,
		Batch:       2,
		Seq:         6,
	}
}

func batchFor(cfg client.Config, seed uint64) (ids, targets []int) {
	r := tensor.NewRNG(seed)
	n := cfg.Batch * cfg.Seq
	ids = make([]int, n)
	targets = make([]int, n)
	vocab := cfg.Model.Vocab
	for i := range ids {
		ids[i] = r.Intn(vocab)
		targets[i] = r.Intn(vocab)
	}
	return ids, targets
}

// localBaseline reproduces the exact same fine-tuning locally: same
// weight seed, same adapter seeds on the same block ranges, same
// optimizer. Returns per-step losses.
func localBaseline(t *testing.T, cfg client.Config, ids, targets []int, steps int) []float64 {
	t.Helper()
	m, err := model.New(tensor.NewRNG(cfg.WeightSeed), cfg.Model)
	if err != nil {
		t.Fatal(err)
	}
	m.SetFrozenBase(true)
	// Client-side adapter (φ_i) over blocks [0, cut).
	adClient, err := cfg.Adapter.Inject(tensor.NewRNG(cfg.AdapterSeed^client.AdapterSalt),
		m.Blocks[:cfg.Cut], cfg.Model.Dim)
	if err != nil {
		t.Fatal(err)
	}
	// Server-side adapter (φ_s) over blocks [cut, L).
	adServer, err := cfg.Adapter.Inject(tensor.NewRNG(cfg.AdapterSeed),
		m.Blocks[cfg.Cut:], cfg.Model.Dim)
	if err != nil {
		t.Fatal(err)
	}
	optC := nn.NewAdam(cfg.LR)
	optS := nn.NewAdam(cfg.LR)

	losses := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		res, err := m.LossAndGrad(ids, targets, cfg.Batch, cfg.Seq)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, res.Loss)
		if err := optC.Step(adClient.Params()); err != nil {
			t.Fatal(err)
		}
		if err := optS.Step(adServer.Params()); err != nil {
			t.Fatal(err)
		}
		nn.ZeroGrads(adClient.Params())
		nn.ZeroGrads(adServer.Params())
	}
	return losses
}

// TestSplitFineTuningEqualsLocal is the paper's convergence claim made
// exact: "the fine-tuning results of Menos are identical to
// single-device fine-tuning, as it only distributes computation while
// maintaining the same logical flow". We assert the per-step losses
// over real TCP match the local run to float tolerance.
func TestSplitFineTuningEqualsLocal(t *testing.T) {
	_, addr := newTestServer(t, true)
	cfg := clientCfg("equiv")
	ids, targets := batchFor(cfg, 7)
	const steps = 5

	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var splitLosses []float64
	for i := 0; i < steps; i++ {
		res, err := c.Step(ids, targets)
		if err != nil {
			t.Fatal(err)
		}
		splitLosses = append(splitLosses, res.Loss)
	}

	localLosses := localBaseline(t, cfg, ids, targets, steps)
	for i := range localLosses {
		if diff := math.Abs(splitLosses[i] - localLosses[i]); diff > 1e-5 {
			t.Fatalf("step %d: split loss %v != local loss %v (diff %v)",
				i, splitLosses[i], localLosses[i], diff)
		}
	}
	// And learning is actually happening.
	if splitLosses[steps-1] >= splitLosses[0] {
		t.Fatalf("no learning: %v -> %v", splitLosses[0], splitLosses[steps-1])
	}
}

// TestPreservePolicyProducesIdenticalMath: the re-forward of the
// on-demand policy must be numerically identical to preserving the
// activations (Fig. 3's policies change memory behaviour, not
// results).
func TestPreservePolicyProducesIdenticalMath(t *testing.T) {
	runPolicy := func(onDemand bool) []float64 {
		_, addr := newTestServer(t, onDemand)
		cfg := clientCfg("policy")
		ids, targets := batchFor(cfg, 8)
		c, err := client.Dial(addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var losses []float64
		for i := 0; i < 4; i++ {
			res, err := c.Step(ids, targets)
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, res.Loss)
		}
		return losses
	}
	onDemand := runPolicy(true)
	preserve := runPolicy(false)
	for i := range onDemand {
		if onDemand[i] != preserve[i] {
			t.Fatalf("step %d: on-demand %v != preserve %v", i, onDemand[i], preserve[i])
		}
	}
}

// TestConcurrentClientsShareBase runs several clients at once with
// different data and different adapter kinds — the heterogeneity §3.1
// motivates — and verifies isolation plus base integrity.
func TestConcurrentClientsShareBase(t *testing.T) {
	srv, addr := newTestServer(t, true)

	specs := []adapter.Spec{
		adapter.LoRASpec(adapter.DefaultLoRA()),
		adapter.PrefixSpec(adapter.PrefixConfig{PrefixLen: 4}),
		adapter.BottleneckSpec(adapter.BottleneckConfig{Hidden: 12}),
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec adapter.Spec) {
			defer wg.Done()
			cfg := clientCfg(fmt.Sprintf("hetero-%d", i))
			cfg.Adapter = spec
			cfg.Cut = 1 + i%2 // different cut layers, too
			ids, targets := batchFor(cfg, uint64(20+i))
			c, err := client.Dial(addr, cfg)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			first, err := c.Step(ids, targets)
			if err != nil {
				errs <- err
				return
			}
			var last client.StepResult
			for s := 0; s < 8; s++ {
				last, err = c.Step(ids, targets)
				if err != nil {
					errs <- err
					return
				}
			}
			if last.Loss >= first.Loss {
				errs <- fmt.Errorf("client %d did not learn: %v -> %v", i, first.Loss, last.Loss)
			}
		}(i, spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := srv.Stats(); err.ClientsServed != 3 {
		t.Fatalf("served %d clients", err.ClientsServed)
	}
}

func TestHandshakeRejections(t *testing.T) {
	_, addr := newTestServer(t, true)

	t.Run("wrong model", func(t *testing.T) {
		cfg := clientCfg("wrong-model")
		cfg.Model = model.LlamaTiny()
		if _, err := client.Dial(addr, cfg); !errors.Is(err, client.ErrRejected) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad adapter", func(t *testing.T) {
		cfg := clientCfg("bad-adapter")
		cfg.Adapter = adapter.Spec{Kind: adapter.KindLoRA} // rank 0
		if _, err := client.Dial(addr, cfg); err == nil {
			t.Fatal("bad adapter accepted")
		}
	})
	t.Run("bad seq", func(t *testing.T) {
		cfg := clientCfg("bad-seq")
		cfg.Seq = testModelCfg().MaxSeq + 1
		if _, err := client.Dial(addr, cfg); !errors.Is(err, client.ErrRejected) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate id", func(t *testing.T) {
		cfg := clientCfg("dup")
		c1, err := client.Dial(addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c1.Close()
		if _, err := client.Dial(addr, cfg); !errors.Is(err, client.ErrRejected) {
			t.Fatalf("duplicate err = %v", err)
		}
	})
}

// TestAbruptDisconnectReleasesInstance: a client vanishing mid-session
// must not leak its instance or its memory reservation.
func TestAbruptDisconnectReleasesInstance(t *testing.T) {
	srv, addr := newTestServer(t, true)
	cfg := clientCfg("flaky")
	ids, targets := batchFor(cfg, 9)

	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(ids, targets); err != nil {
		t.Fatal(err)
	}
	// Abrupt close without Bye.
	_ = c.Close()

	// The same client id must eventually be admitted again (the old
	// instance released). Retry a few times while teardown races.
	var again *client.Client
	for i := 0; i < 100; i++ {
		again, err = client.Dial(addr, cfg)
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("re-admission failed: %v", err)
	}
	defer again.Close()
	if _, err := again.Step(ids, targets); err != nil {
		t.Fatal(err)
	}
	_ = srv
}

// TestServerRejectsOversizedGeometry: the profiled batch/seq bound the
// granted memory; a larger request must be an error, not an OOM, while
// smaller geometry (e.g. single-token generation) is memory-safe and
// accepted.
func TestServerRejectsOversizedGeometry(t *testing.T) {
	_, addr := newTestServer(t, true)
	cfg := clientCfg("geom")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c, err := client.New(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Smaller-than-profiled geometry works (profiled 2x6).
	small := tensor.New(4, testModelCfg().Dim)
	if err := split.WriteMessage(conn, &split.ForwardReq{Iter: 0, Batch: 1, Seq: 4, Activations: small}); err != nil {
		t.Fatal(err)
	}
	msg, err := split.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*split.ForwardResp); !ok {
		t.Fatalf("small geometry rejected: %v", msg.MsgType())
	}

	// Larger-than-profiled geometry is rejected.
	big := tensor.New(48, testModelCfg().Dim)
	if err := split.WriteMessage(conn, &split.ForwardReq{Iter: 1, Batch: 8, Seq: 6, Activations: big}); err != nil {
		t.Fatal(err)
	}
	msg, err = split.ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*split.ErrorMsg); !ok {
		t.Fatalf("expected error message, got %v", msg.MsgType())
	}
	_ = c
}

// TestEvaluate runs a no-grad evaluation round-trip.
func TestEvaluate(t *testing.T) {
	_, addr := newTestServer(t, true)
	cfg := clientCfg("eval")
	ids, targets := batchFor(cfg, 10)
	c, err := client.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loss, err := c.Evaluate(ids, targets)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("loss = %v", loss)
	}
	// Evaluation must not move parameters: next evaluation identical.
	loss2, err := c.Evaluate(ids, targets)
	if err != nil {
		t.Fatal(err)
	}
	if loss != loss2 {
		t.Fatalf("evaluate mutated state: %v != %v", loss, loss2)
	}
}

// TestBaseIntegrityAfterServing: after real fine-tuning traffic, the
// shared base parameters are bit-identical (the read-only contract).
func TestBaseIntegrityAfterServing(t *testing.T) {
	store, err := share.NewStore(tensor.NewRNG(weightSeed), testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, OnDemand: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	cfg := clientCfg("integrity")
	ids, targets := batchFor(cfg, 11)
	c, err := client.Dial(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Step(ids, targets); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Close()
	if err := store.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerBudgetRestoredAfterClients: serving N clients and
// disconnecting them must return the scheduler to its initial budget
// (no leaked grants or reservations).
func TestSchedulerBudgetRestoredAfterClients(t *testing.T) {
	srv, addr := newTestServer(t, true)
	before := srv.Scheduler().Available()
	for i := 0; i < 3; i++ {
		cfg := clientCfg(fmt.Sprintf("budget-%d", i))
		ids, targets := batchFor(cfg, uint64(30+i))
		c, err := client.Dial(addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Step(ids, targets); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Teardown is asynchronous to Close; wait for the budget to drain
	// back.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Scheduler().Available() == before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("budget leaked: %d != %d", srv.Scheduler().Available(), before)
}

// TestMaxClientsAdmission: the cap rejects the (n+1)th client with a
// clear reason, and a slot frees up when a client leaves.
func TestMaxClientsAdmission(t *testing.T) {
	store, err := share.NewStore(tensor.NewRNG(weightSeed), testModelCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, OnDemand: true, MaxClients: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	addr := l.Addr().String()

	c1, err := client.Dial(addr, clientCfg("cap-1"))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := client.Dial(addr, clientCfg("cap-2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Dial(addr, clientCfg("cap-3")); !errors.Is(err, client.ErrRejected) {
		t.Fatalf("third client err = %v, want rejection", err)
	}
	// Freeing a slot admits a new client.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	var c3 *client.Client
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c3, err = client.Dial(addr, clientCfg("cap-3"))
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("slot never freed: %v", err)
	}
	defer c3.Close()
}
