// Package share implements the base-model sharing mechanism of §3.1:
// a single copy of the base parameters lives in a Store, and each
// client receives an Instance — a private structural view over the
// shared parameters that can be cropped at the client's cut layer and
// customized with the client's adapter, without duplicating the base
// model.
package share

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"menos/internal/adapter"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/tensor"
)

// Errors reported by the store.
var (
	ErrReleased  = errors.New("share: instance already released")
	ErrCorrupted = errors.New("share: shared base parameters were modified")
)

// Store holds the single shared copy of a base model. The master model
// is frozen on construction: its parameters are read-only for the
// store's whole lifetime, which is what makes concurrent sharing safe.
type Store struct {
	cfg    model.Config
	master *model.Transformer

	mu        sync.Mutex
	instances map[string]*Instance
	nextSeq   int

	checksum uint64
}

// NewStore builds the base model once (the paper's "preloaded into GPU
// memory in advance") and freezes it.
func NewStore(rng *tensor.RNG, cfg model.Config) (*Store, error) {
	m, err := model.New(rng, cfg)
	if err != nil {
		return nil, fmt.Errorf("share: build master: %w", err)
	}
	return NewStoreFromModel(m)
}

// NewStoreFromModel wraps an existing model as the shared base. The
// model is frozen; callers must not mutate its parameters afterwards.
func NewStoreFromModel(m *model.Transformer) (*Store, error) {
	m.SetFrozenBase(true)
	s := &Store{
		cfg:       m.Cfg,
		master:    m,
		instances: make(map[string]*Instance),
	}
	s.checksum = s.computeChecksum()
	return s, nil
}

// Config returns the base model's configuration.
func (s *Store) Config() model.Config { return s.cfg }

// Master exposes the underlying shared model (read-only use: the input
// and output sections of a locally simulated client, tests).
func (s *Store) Master() *model.Transformer { return s.master }

// BaseParamBytes returns the byte footprint of the shared parameters
// (the 𝕄 term): this is paid once regardless of client count.
func (s *Store) BaseParamBytes() int64 {
	return s.cfg.TotalParams() * 4
}

// ServerParamBytes returns the byte footprint of only the blocks the
// server hosts for the given cut.
func (s *Store) ServerParamBytes(cut int) int64 {
	return s.cfg.BlockParams() * int64(s.cfg.Layers-cut) * 4
}

// ActiveInstances returns the number of live (unreleased) instances.
func (s *Store) ActiveInstances() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.instances)
}

// Instance is one client's structural view over the shared base: its
// own Block objects referencing the shared parameter tensors, cropped
// to the client's cut layer, with the client's private adapter
// attached.
type Instance struct {
	ClientID string
	Cut      int

	store    *Store
	blocks   []*model.Block
	body     *model.BodySection
	adapter  adapter.Adapter
	released bool
}

// NewInstance creates a per-client instance whose body covers blocks
// [cut, Layers). The id must be unique among live instances.
func (s *Store) NewInstance(clientID string, cut int) (*Instance, error) {
	if cut < 1 || cut >= s.cfg.Layers {
		return nil, fmt.Errorf("share: cut %d out of range [1,%d): %w",
			cut, s.cfg.Layers, model.ErrConfig)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.instances[clientID]; ok {
		return nil, fmt.Errorf("share: client %q already has a live instance", clientID)
	}
	inst := &Instance{
		ClientID: clientID,
		Cut:      cut,
		store:    s,
		blocks:   model.ShallowCloneBlocks(s.master.Blocks[cut:]),
	}
	inst.body = model.Body(inst.blocks)
	s.instances[clientID] = inst
	return inst, nil
}

// Body returns the instance's server-side section.
func (i *Instance) Body() *model.BodySection { return i.body }

// Blocks returns the instance's private structural blocks.
func (i *Instance) Blocks() []*model.Block { return i.blocks }

// AttachAdapter injects the client's adapter into this instance's
// structure. At most one adapter per instance.
func (i *Instance) AttachAdapter(rng *tensor.RNG, spec adapter.Spec) (adapter.Adapter, error) {
	if i.released {
		return nil, ErrReleased
	}
	if i.adapter != nil {
		return nil, fmt.Errorf("share: instance %q already has an adapter", i.ClientID)
	}
	ad, err := spec.Inject(rng, i.blocks, i.store.cfg.Dim)
	if err != nil {
		return nil, fmt.Errorf("share: attach adapter: %w", err)
	}
	i.adapter = ad
	return ad, nil
}

// Adapter returns the attached adapter, or nil.
func (i *Instance) Adapter() adapter.Adapter { return i.adapter }

// AdapterParams returns the instance's trainable parameters (φ_s).
func (i *Instance) AdapterParams() []nn.Param {
	if i.adapter == nil {
		return nil
	}
	return i.adapter.Params()
}

// PrivateBytes returns the per-client persistent footprint: adapter
// parameters plus gradients (the 𝔸 term; optimizer state 𝕆 is owned
// by the optimizer).
func (i *Instance) PrivateBytes() int64 {
	if i.adapter == nil {
		return 0
	}
	return 2 * i.adapter.ParamBytes() // values + gradients
}

// Release detaches the adapter and returns the instance to the store.
// Releasing twice is an error.
func (i *Instance) Release() error {
	if i.released {
		return ErrReleased
	}
	if i.adapter != nil {
		i.adapter.Remove()
		i.adapter = nil
	}
	i.released = true
	i.store.mu.Lock()
	defer i.store.mu.Unlock()
	delete(i.store.instances, i.ClientID)
	return nil
}

// VerifyIntegrity recomputes the checksum over the shared base
// parameters and fails if any bit changed — the store's read-only
// contract. Menos servers call this periodically (and tests always) to
// prove that no client's fine-tuning touched the shared base.
func (s *Store) VerifyIntegrity() error {
	if got := s.computeChecksum(); got != s.checksum {
		return fmt.Errorf("%w: checksum %x != %x", ErrCorrupted, got, s.checksum)
	}
	return nil
}

// computeChecksum hashes every base parameter tensor.
func (s *Store) computeChecksum() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 4)
	hashTensor := func(t *tensor.Tensor) {
		for _, v := range t.Data() {
			bits := math.Float32bits(v)
			buf[0] = byte(bits)
			buf[1] = byte(bits >> 8)
			buf[2] = byte(bits >> 16)
			buf[3] = byte(bits >> 24)
			h.Write(buf)
		}
	}
	m := s.master
	hashTensor(m.Embed.Table.Value)
	if m.Pos != nil {
		hashTensor(m.Pos.Table.Value)
	}
	// Hash block parameters via the frozen-state-independent listing:
	// temporarily unfreezing would race with concurrent use, so walk
	// the known structure instead.
	for _, b := range m.Blocks {
		for _, op := range []nn.Op{b.Norm1, b.Norm2, b.Attn.Q, b.Attn.K, b.Attn.V, b.Attn.O,
			b.FFN.Up, b.FFN.Down, b.FFN.Gate} {
			if op == nil {
				continue
			}
			switch l := op.(type) {
			case *nn.Linear:
				hashTensor(l.W.Value)
				if l.B.Value != nil {
					hashTensor(l.B.Value)
				}
			case *nn.LayerNorm:
				hashTensor(l.Gamma.Value)
				hashTensor(l.Beta.Value)
			case *nn.RMSNorm:
				hashTensor(l.Gamma.Value)
			case selfHashing:
				// Quantized (or otherwise packed) layers feed their own
				// storage into the hash.
				l.HashInto(func(p []byte) { h.Write(p) })
			}
		}
	}
	hashTensor(m.LMHead.W.Value)
	return h.Sum64()
}

// selfHashing is implemented by layers with packed storage (e.g.
// quantized linears) that contribute their own bytes to the integrity
// checksum.
type selfHashing interface {
	HashInto(write func([]byte))
}
