package share

import (
	"errors"
	"math"
	"sync"
	"testing"

	"menos/internal/adapter"
	"menos/internal/model"
	"menos/internal/nn"
	"menos/internal/quant"
	"menos/internal/tensor"
)

func testStore(t *testing.T, family model.Family) *Store {
	t.Helper()
	cfg := model.Config{
		Name: "test", Family: family,
		Vocab: 13, Dim: 8, Layers: 4, Heads: 2, FFN: 16, MaxSeq: 16,
	}
	s, err := NewStore(tensor.NewRNG(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInstanceLifecycle(t *testing.T) {
	s := testStore(t, model.FamilyOPT)
	inst, err := s.NewInstance("c1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveInstances() != 1 {
		t.Fatalf("ActiveInstances = %d", s.ActiveInstances())
	}
	if got := len(inst.Blocks()); got != 3 {
		t.Fatalf("instance has %d blocks, want 3", got)
	}
	if err := inst.Release(); err != nil {
		t.Fatal(err)
	}
	if s.ActiveInstances() != 0 {
		t.Fatal("instance not released")
	}
	if err := inst.Release(); !errors.Is(err, ErrReleased) {
		t.Fatalf("double release err = %v", err)
	}
}

func TestDuplicateClientIDRejected(t *testing.T) {
	s := testStore(t, model.FamilyOPT)
	if _, err := s.NewInstance("c1", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewInstance("c1", 1); err == nil {
		t.Fatal("duplicate client id accepted")
	}
}

func TestCutValidation(t *testing.T) {
	s := testStore(t, model.FamilyOPT)
	if _, err := s.NewInstance("bad0", 0); err == nil {
		t.Fatal("cut 0 accepted")
	}
	if _, err := s.NewInstance("bad4", 4); err == nil {
		t.Fatal("cut == layers accepted")
	}
}

// TestInstancesShareParameters is the core §3.1 property: instances'
// blocks reference the same parameter tensors as the master.
func TestInstancesShareParameters(t *testing.T) {
	s := testStore(t, model.FamilyLlama)
	a, err := s.NewInstance("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewInstance("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	masterQ, ok := s.Master().Blocks[1].Attn.Q.(*nn.Linear)
	if !ok {
		t.Fatal("master q is not a Linear")
	}
	aq, ok := a.Blocks()[0].Attn.Q.(*nn.Linear)
	if !ok {
		t.Fatal("instance q is not a Linear")
	}
	bq, ok := b.Blocks()[0].Attn.Q.(*nn.Linear)
	if !ok {
		t.Fatal("instance q is not a Linear")
	}
	if aq != masterQ || bq != masterQ {
		t.Fatal("instances do not share the master's parameter-bearing layers")
	}
	// Yet the structural Block objects are distinct.
	if a.Blocks()[0] == b.Blocks()[0] || a.Blocks()[0] == s.Master().Blocks[1] {
		t.Fatal("instances share structure objects")
	}
}

// TestAdapterIsolation: wrapping one instance's projection must not
// affect other instances or the master.
func TestAdapterIsolation(t *testing.T) {
	s := testStore(t, model.FamilyLlama)
	a, _ := s.NewInstance("a", 1)
	b, _ := s.NewInstance("b", 1)

	adA, err := a.AttachAdapter(tensor.NewRNG(2), adapter.LoRASpec(adapter.DefaultLoRA()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Blocks()[0].Attn.Q.(*adapter.LoRALinear); !ok {
		t.Fatal("adapter not attached to instance a")
	}
	if _, ok := b.Blocks()[0].Attn.Q.(*nn.Linear); !ok {
		t.Fatal("instance b's structure was modified by a's adapter")
	}
	if _, ok := s.Master().Blocks[1].Attn.Q.(*nn.Linear); !ok {
		t.Fatal("master structure was modified")
	}

	// Different adapter kinds on different instances (heterogeneity).
	if _, err := b.AttachAdapter(tensor.NewRNG(3), adapter.PrefixSpec(adapter.DefaultPrefix())); err != nil {
		t.Fatal(err)
	}
	if a.Blocks()[0].Attn.Prefix != nil {
		t.Fatal("b's prefix leaked into a")
	}
	if b.Blocks()[0].Attn.Prefix == nil {
		t.Fatal("prefix not attached to b")
	}

	_ = adA
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondAdapterRejected(t *testing.T) {
	s := testStore(t, model.FamilyOPT)
	a, _ := s.NewInstance("a", 1)
	if _, err := a.AttachAdapter(tensor.NewRNG(4), adapter.LoRASpec(adapter.DefaultLoRA())); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttachAdapter(tensor.NewRNG(5), adapter.LoRASpec(adapter.DefaultLoRA())); err == nil {
		t.Fatal("second adapter accepted")
	}
}

func TestAttachAfterRelease(t *testing.T) {
	s := testStore(t, model.FamilyOPT)
	a, _ := s.NewInstance("a", 1)
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttachAdapter(tensor.NewRNG(6), adapter.LoRASpec(adapter.DefaultLoRA())); !errors.Is(err, ErrReleased) {
		t.Fatalf("attach after release err = %v", err)
	}
}

// TestSharedFineTuningLeavesBaseUntouched runs real fine-tuning through
// two instances and proves bit-level base integrity afterwards — the
// read-only contract that makes sharing safe.
func TestSharedFineTuningLeavesBaseUntouched(t *testing.T) {
	s := testStore(t, model.FamilyLlama)
	cfg := s.Config()

	for _, id := range []string{"a", "b"} {
		inst, err := s.NewInstance(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		ad, err := inst.AttachAdapter(tensor.NewRNG(7), adapter.LoRASpec(adapter.DefaultLoRA()))
		if err != nil {
			t.Fatal(err)
		}
		// Drive real forward/backward through the instance body.
		batch, seq := 1, 5
		r := tensor.NewRNG(8)
		x := tensor.NewNormal(r, 0.5, batch*seq, cfg.Dim)
		opt := nn.NewAdam(1e-2)
		for step := 0; step < 5; step++ {
			y, cache, err := inst.Body().Forward(x, batch, seq, true)
			if err != nil {
				t.Fatal(err)
			}
			dy := tensor.New(y.Shape()...)
			dy.Fill(0.1)
			if _, err := inst.Body().Backward(cache, dy); err != nil {
				t.Fatal(err)
			}
			if err := opt.Step(ad.Params()); err != nil {
				t.Fatal(err)
			}
			nn.ZeroGrads(ad.Params())
		}
		// The adapter must actually have learned something.
		var moved bool
		for _, p := range ad.Params() {
			if p.Value.MaxAbs() > 0 && p.Name[len(p.Name)-1] == 'b' {
				moved = true
			}
		}
		if !moved {
			t.Fatal("adapter B matrices never moved")
		}
	}
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrityDetectsCorruption(t *testing.T) {
	s := testStore(t, model.FamilyOPT)
	lin, ok := s.Master().Blocks[2].Attn.V.(*nn.Linear)
	if !ok {
		t.Fatal("not a linear")
	}
	lin.W.Value.Data()[0] += 1
	if err := s.VerifyIntegrity(); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

// TestMemoryScalingIsSublinear is Fig. 5 in miniature: N instances cost
// one base copy plus N small adapter footprints.
func TestMemoryScalingIsSublinear(t *testing.T) {
	s := testStore(t, model.FamilyLlama)
	base := s.BaseParamBytes()
	var private int64
	const n = 4
	for i := 0; i < n; i++ {
		inst, err := s.NewInstance(string(rune('a'+i)), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inst.AttachAdapter(tensor.NewRNG(uint64(10+i)), adapter.LoRASpec(adapter.DefaultLoRA())); err != nil {
			t.Fatal(err)
		}
		private += inst.PrivateBytes()
	}
	shared := base + private
	duplicated := base * n
	// At toy scale adapters are not ≪ base, so only strict improvement
	// is asserted here; the realistic 72% ratio is asserted against the
	// full-size shapes in the memmodel package.
	if shared >= duplicated {
		t.Fatalf("sharing does not save memory: %d vs duplicated %d", shared, duplicated)
	}
	perClient := private / n
	if perClient >= base {
		t.Fatalf("per-client private footprint %d not smaller than base %d", perClient, base)
	}
}

func TestServerParamBytes(t *testing.T) {
	s := testStore(t, model.FamilyOPT)
	cfg := s.Config()
	perBlock := cfg.BlockParams() * 4
	if got := s.ServerParamBytes(1); got != perBlock*3 {
		t.Fatalf("ServerParamBytes(1) = %d, want %d", got, perBlock*3)
	}
	if got := s.ServerParamBytes(3); got != perBlock*1 {
		t.Fatalf("ServerParamBytes(3) = %d, want %d", got, perBlock)
	}
}

// TestConcurrentInstanceForward runs forward passes on several
// instances concurrently; shared read-only parameters must be safe.
func TestConcurrentInstanceForward(t *testing.T) {
	s := testStore(t, model.FamilyOPT)
	cfg := s.Config()
	const n = 4
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		inst, err := s.NewInstance(string(rune('a'+i)), 1)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(inst *Instance, seed uint64) {
			defer wg.Done()
			x := tensor.NewNormal(tensor.NewRNG(seed), 0.5, 6, cfg.Dim)
			for step := 0; step < 10; step++ {
				if _, _, err := inst.Body().Forward(x, 1, 6, false); err != nil {
					errs <- err
					return
				}
			}
		}(inst, uint64(20+i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestInstanceForwardEqualsMaster: an instance with a fresh (identity)
// adapter computes exactly what the master body computes.
func TestInstanceForwardEqualsMaster(t *testing.T) {
	s := testStore(t, model.FamilyLlama)
	cfg := s.Config()
	inst, err := s.NewInstance("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.AttachAdapter(tensor.NewRNG(30), adapter.LoRASpec(adapter.DefaultLoRA())); err != nil {
		t.Fatal(err)
	}
	x := tensor.NewNormal(tensor.NewRNG(31), 0.5, 4, cfg.Dim)
	yInst, _, err := inst.Body().Forward(x, 1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	_, masterBody, _, err := s.Master().Split(1)
	if err != nil {
		t.Fatal(err)
	}
	yMaster, _, err := masterBody.Forward(x, 1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range yInst.Data() {
		if math.Abs(float64(yInst.Data()[i]-yMaster.Data()[i])) > 1e-6 {
			t.Fatalf("fresh instance diverges from master at %d", i)
		}
	}
}

// TestIntegrityCoversQuantizedBase: a quantized base is covered by the
// integrity checksum like an fp32 one — any hashed component tripping
// after construction is detected.
func TestIntegrityCoversQuantizedBase(t *testing.T) {
	cfg := model.Config{
		Name: "test", Family: model.FamilyOPT,
		Vocab: 13, Dim: 8, Layers: 3, Heads: 2, FFN: 16, MaxSeq: 16,
	}
	m, err := model.New(tensor.NewRNG(40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quant.QuantizeBlocks(m.Blocks, quant.Int8); err != nil {
		t.Fatal(err)
	}
	s, err := NewStoreFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
	// Corrupting a hashed fp32 component still trips the checksum.
	ln := m.Blocks[0].Norm1.(*nn.LayerNorm)
	ln.Gamma.Value.Data()[0] += 1
	if err := s.VerifyIntegrity(); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("corruption not detected: %v", err)
	}
}
