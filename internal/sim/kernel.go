// Package sim implements a deterministic discrete-event simulator with
// goroutine-backed processes, in the style of SimPy: processes run one
// at a time under kernel control, advancing a virtual clock, so every
// simulation is reproducible bit-for-bit regardless of host scheduling.
//
// The performance plane of the reproduction runs the Menos server,
// its clients and the network as sim processes, which is what lets a
// "154-second" vanilla fine-tuning iteration be measured in
// microseconds of wall time.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ErrDeadlock is returned by Run when no events remain but processes
// are still blocked.
var ErrDeadlock = errors.New("sim: deadlock")

// event is a scheduled occurrence: either waking a process or running a
// callback.
type event struct {
	at   time.Duration
	seq  uint64 // FIFO tiebreak for equal times
	proc *Proc
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel drives the simulation. It is not safe for concurrent use from
// outside; all interaction happens from sim processes or between Run
// calls.
type Kernel struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	yielded chan struct{}
	parked  map[*Proc]string // blocked process -> reason (for deadlock reports)
	live    int
	running *Proc
}

// New creates an empty simulation at time zero.
func New() *Kernel {
	return &Kernel{
		yielded: make(chan struct{}),
		parked:  make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Proc is a simulation process. All Proc methods must be called from
// the process's own goroutine (inside the function passed to Spawn).
type Proc struct {
	kernel *Kernel
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.kernel }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.kernel.now }

// Spawn creates a process that starts at the current virtual time.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{kernel: k, name: name, resume: make(chan struct{})}
	k.live++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		k.live--
		k.yielded <- struct{}{}
	}()
	k.push(&event{at: k.now, proc: p})
	return p
}

// After schedules fn to run at now+d, outside any process context.
func (k *Kernel) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.push(&event{at: k.now + d, fn: fn})
}

func (k *Kernel) push(e *event) {
	k.seq++
	e.seq = k.seq
	heap.Push(&k.queue, e)
}

// Run executes events until the queue drains. It returns ErrDeadlock
// if blocked processes remain afterwards.
func (k *Kernel) Run() error { return k.RunUntil(-1) }

// RunUntil executes events with time ≤ limit (limit < 0 means no
// limit). Reaching the limit with events still queued is not an error;
// draining the queue with parked processes is a deadlock.
func (k *Kernel) RunUntil(limit time.Duration) error {
	for k.queue.Len() > 0 {
		next := k.queue[0]
		if limit >= 0 && next.at > limit {
			k.now = limit
			return nil
		}
		heap.Pop(&k.queue)
		k.now = next.at
		switch {
		case next.proc != nil:
			k.dispatch(next.proc)
		case next.fn != nil:
			next.fn()
		}
	}
	if len(k.parked) > 0 {
		return fmt.Errorf("%w: %s", ErrDeadlock, k.parkedSummary())
	}
	return nil
}

func (k *Kernel) parkedSummary() string {
	var parts []string
	for p, reason := range k.parked {
		parts = append(parts, fmt.Sprintf("%s (%s)", p.name, reason))
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// dispatch resumes a process and waits for it to park or finish.
func (k *Kernel) dispatch(p *Proc) {
	if p.done {
		return
	}
	delete(k.parked, p)
	prev := k.running
	k.running = p
	p.resume <- struct{}{}
	<-k.yielded
	k.running = prev
}

// park blocks the calling process until the kernel resumes it.
func (p *Proc) park(reason string) {
	k := p.kernel
	k.parked[p] = reason
	k.yielded <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	k := p.kernel
	k.push(&event{at: k.now + d, proc: p})
	p.park(fmt.Sprintf("sleeping until %v", k.now+d))
}

// Yield reschedules the process at the current time, letting other
// ready processes run first.
func (p *Proc) Yield() {
	k := p.kernel
	k.push(&event{at: k.now, proc: p})
	p.park("yield")
}

// Signal is a broadcast/wait synchronization point.
type Signal struct {
	kernel  *Kernel
	waiters []*Proc
}

// NewSignal creates a signal bound to the kernel.
func (k *Kernel) NewSignal() *Signal {
	return &Signal{kernel: k}
}

// Wait parks the calling process until the signal fires.
func (s *Signal) Wait(p *Proc, reason string) {
	s.waiters = append(s.waiters, p)
	p.park("waiting: " + reason)
}

// Fire wakes one waiter (FIFO). It reports whether a waiter existed.
func (s *Signal) Fire() bool {
	if len(s.waiters) == 0 {
		return false
	}
	p := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.kernel.push(&event{at: s.kernel.now, proc: p})
	return true
}

// Broadcast wakes all waiters.
func (s *Signal) Broadcast() {
	for _, p := range s.waiters {
		s.kernel.push(&event{at: s.kernel.now, proc: p})
	}
	s.waiters = nil
}

// Pending returns the number of blocked waiters.
func (s *Signal) Pending() int { return len(s.waiters) }
