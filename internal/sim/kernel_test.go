package sim

import (
	"errors"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New()
	var woke time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	start := time.Now()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
}

func TestEventOrderingIsFIFOAtEqualTimes(t *testing.T) {
	k := New()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		k := New()
		var times []time.Duration
		sig := k.NewSignal()
		k.Spawn("producer", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(time.Duration(i+1) * 100 * time.Millisecond)
				sig.Fire()
			}
		})
		k.Spawn("consumer", func(p *Proc) {
			for i := 0; i < 5; i++ {
				sig.Wait(p, "tick")
				times = append(times, p.Now())
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("got %d ticks", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSignalFIFO(t *testing.T) {
	k := New()
	var order []string
	sig := k.NewSignal()
	for _, name := range []string{"w1", "w2"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			sig.Wait(p, "test")
			order = append(order, name)
		})
	}
	k.Spawn("firer", func(p *Proc) {
		p.Sleep(time.Second)
		if !sig.Fire() {
			t.Error("no waiter")
		}
		p.Sleep(time.Second)
		sig.Fire()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "w1" || order[1] != "w2" {
		t.Fatalf("order = %v", order)
	}
}

func TestBroadcast(t *testing.T) {
	k := New()
	sig := k.NewSignal()
	woken := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			sig.Wait(p, "b")
			woken++
		})
	}
	k.Spawn("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if sig.Pending() != 4 {
			t.Errorf("pending = %d", sig.Pending())
		}
		sig.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Fatalf("woken = %d", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	sig := k.NewSignal()
	k.Spawn("stuck", func(p *Proc) {
		sig.Wait(p, "never fired")
	})
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if k.Now() != 10*time.Second {
		t.Fatalf("Now = %v", k.Now())
	}
	// Continue to completion.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
}

func TestAfterCallback(t *testing.T) {
	k := New()
	var at time.Duration
	k.After(3*time.Second, func() { at = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Second {
		t.Fatalf("callback at %v", at)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := New()
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
		})
		p.Sleep(5 * time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestYield(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNegativeDurationsClamped(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced time to %v", p.Now())
		}
	})
	k.After(-time.Second, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailbox(t *testing.T) {
	k := New()
	mb := NewMailbox[int](k, "test")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(time.Second)
			mb.Send(i * 10)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("got = %v", got)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	k := New()
	mb := NewMailbox[string](k, "t")
	if _, ok := mb.TryRecv(); ok {
		t.Fatal("empty TryRecv succeeded")
	}
	mb.Send("x")
	if mb.Len() != 1 {
		t.Fatalf("len = %d", mb.Len())
	}
	v, ok := mb.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q, %v", v, ok)
	}
}

func TestMailboxBuffersWithoutReceiver(t *testing.T) {
	k := New()
	mb := NewMailbox[int](k, "t")
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			mb.Send(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if mb.Len() != 10 {
		t.Fatalf("buffered %d", mb.Len())
	}
}

func TestProcName(t *testing.T) {
	k := New()
	k.Spawn("named", func(p *Proc) {
		if p.Name() != "named" || p.Kernel() != k {
			t.Error("proc identity wrong")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
