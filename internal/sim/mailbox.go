package sim

// Mailbox is an unbounded FIFO channel between simulation processes:
// Send never blocks; Recv parks the receiver until an item arrives.
type Mailbox[T any] struct {
	kernel *Kernel
	name   string
	items  []T
	signal *Signal
}

// NewMailbox creates a mailbox bound to the kernel.
func NewMailbox[T any](k *Kernel, name string) *Mailbox[T] {
	return &Mailbox[T]{kernel: k, name: name, signal: k.NewSignal()}
}

// Send enqueues v and wakes one waiting receiver. Safe to call from
// process context or kernel callbacks.
func (m *Mailbox[T]) Send(v T) {
	m.items = append(m.items, v)
	m.signal.Fire()
}

// Recv dequeues the next item, parking the process while the mailbox
// is empty.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for len(m.items) == 0 {
		m.signal.Wait(p, "mailbox "+m.name)
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v
}

// TryRecv dequeues without blocking; ok is false when empty.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// Len returns the queued item count.
func (m *Mailbox[T]) Len() int { return len(m.items) }
