package sim

// Resource is a counted resource (e.g. GPU compute engines): Acquire
// parks the process while all units are in use, FIFO.
type Resource struct {
	kernel   *Kernel
	name     string
	capacity int
	inUse    int
	signal   *Signal
}

// NewResource creates a resource with the given unit count.
func (k *Kernel) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{kernel: k, name: name, capacity: capacity, signal: k.NewSignal()}
}

// Acquire takes one unit, parking until one is free.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.signal.Wait(p, "resource "+r.name)
	}
	r.inUse++
}

// Release returns one unit and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.inUse--
	r.signal.Fire()
}

// InUse returns the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity returns the unit count.
func (r *Resource) Capacity() int { return r.capacity }
