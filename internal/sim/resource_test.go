package sim

import (
	"testing"
	"time"
)

func TestResourceSerializes(t *testing.T) {
	k := New()
	r := k.NewResource("gpu", 1)
	var active, maxActive int
	for i := 0; i < 4; i++ {
		k.Spawn("worker", func(p *Proc) {
			r.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(time.Second)
			active--
			r.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxActive != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxActive)
	}
	// 4 workers × 1 s serialized.
	if k.Now() != 4*time.Second {
		t.Fatalf("end time = %v, want 4s", k.Now())
	}
}

func TestResourceCapacity(t *testing.T) {
	k := New()
	r := k.NewResource("gpus", 2)
	if r.Capacity() != 2 {
		t.Fatalf("capacity = %d", r.Capacity())
	}
	for i := 0; i < 4; i++ {
		k.Spawn("worker", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(time.Second)
			r.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 workers over 2 units: 2 s total.
	if k.Now() != 2*time.Second {
		t.Fatalf("end time = %v, want 2s", k.Now())
	}
	if r.InUse() != 0 {
		t.Fatalf("units leaked: %d", r.InUse())
	}
}

func TestResourceFIFO(t *testing.T) {
	k := New()
	r := k.NewResource("r", 1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(time.Second)
			r.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	k := New()
	r := k.NewResource("r", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceMinimumCapacity(t *testing.T) {
	k := New()
	if r := k.NewResource("r", 0); r.Capacity() != 1 {
		t.Fatalf("zero capacity not clamped: %d", r.Capacity())
	}
}
