// Package simnet models the wide-area link between split-learning
// clients and the server: a bandwidth/latency pipe with mild fair-share
// contention and deterministic jitter. The paper's geo-distributed
// setup (Toronto ↔ Vancouver over the Internet) is reproduced by a
// preset calibrated to the transfer sizes and communication times of
// §5 (≈8 MB/s effective per-flow throughput, ≈60 ms RTT).
package simnet

import (
	"fmt"
	"time"

	"menos/internal/sim"
	"menos/internal/tensor"
)

// Link is a shared bidirectional WAN pipe.
type Link struct {
	kernel *sim.Kernel

	// BytesPerSecond is the effective per-flow application throughput.
	BytesPerSecond float64
	// OneWayLatency is half the RTT, added to every transfer.
	OneWayLatency time.Duration
	// ContentionFactor inflates transfer time by this fraction per
	// additional concurrent flow ("clients must share the server's
	// bandwidth, but the impact is negligible").
	ContentionFactor float64
	// JitterFraction adds a deterministic pseudo-random ±fraction to
	// each transfer.
	JitterFraction float64

	rng    *tensor.RNG
	active int

	totalBytes     int64
	totalTransfers int64
}

// WANPreset returns the paper-calibrated Internet link.
func WANPreset(k *sim.Kernel) *Link {
	return &Link{
		kernel:           k,
		BytesPerSecond:   8 << 20, // ≈8 MiB/s: 51.2 MB/round ⇒ 6.4 s (OPT)
		OneWayLatency:    30 * time.Millisecond,
		ContentionFactor: 0.015,
		JitterFraction:   0.04,
		rng:              tensor.NewRNG(0xbeef),
	}
}

// LANPreset returns a fast local link, used by tests that want
// communication out of the picture.
func LANPreset(k *sim.Kernel) *Link {
	return &Link{
		kernel:         k,
		BytesPerSecond: 1 << 30,
		OneWayLatency:  200 * time.Microsecond,
		rng:            tensor.NewRNG(0xbeef),
	}
}

// Preset builds a link factory with the given per-flow throughput and
// one-way latency, keeping the WAN preset's contention and jitter
// characteristics (and its deterministic RNG seed). The bandwidth
// sweeps use this to walk a ladder of link speeds between the paper's
// WAN and a datacenter LAN without redefining the link model each time.
func Preset(bytesPerSecond float64, oneWay time.Duration) func(*sim.Kernel) *Link {
	return func(k *sim.Kernel) *Link {
		return &Link{
			kernel:           k,
			BytesPerSecond:   bytesPerSecond,
			OneWayLatency:    oneWay,
			ContentionFactor: 0.015,
			JitterFraction:   0.04,
			rng:              tensor.NewRNG(0xbeef),
		}
	}
}

// TransferDuration computes the simulated time to move bytes over the
// link given the current contention, including jitter.
func (l *Link) TransferDuration(bytes int64) time.Duration {
	seconds := float64(bytes) / l.BytesPerSecond
	seconds *= 1 + l.ContentionFactor*float64(l.active)
	if l.JitterFraction > 0 {
		seconds *= 1 + l.JitterFraction*(2*l.rng.Float64()-1)
	}
	return l.OneWayLatency + time.Duration(seconds*float64(time.Second))
}

// Transfer moves bytes over the link from within a sim process,
// sleeping for the transfer duration. It returns the time taken.
func (l *Link) Transfer(p *sim.Proc, bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	d := l.TransferDuration(bytes)
	l.active++
	l.totalBytes += bytes
	l.totalTransfers++
	p.Sleep(d)
	l.active--
	return d
}

// Stats summarizes link usage.
type Stats struct {
	TotalBytes     int64
	TotalTransfers int64
}

// Stats returns cumulative usage counters.
func (l *Link) Stats() Stats {
	return Stats{TotalBytes: l.totalBytes, TotalTransfers: l.totalTransfers}
}

// String describes the link.
func (l *Link) String() string {
	return fmt.Sprintf("link(%.1f MiB/s, %v one-way)",
		l.BytesPerSecond/(1<<20), l.OneWayLatency)
}
