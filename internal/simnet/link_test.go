package simnet

import (
	"strings"
	"testing"
	"time"

	"menos/internal/sim"
)

func TestTransferDurationScalesWithBytes(t *testing.T) {
	k := sim.New()
	l := LANPreset(k)
	small := l.TransferDuration(1 << 10)
	large := l.TransferDuration(1 << 24)
	if large <= small {
		t.Fatalf("larger transfer not slower: %v vs %v", large, small)
	}
	// Latency floor applies even to empty transfers.
	if l.TransferDuration(0) < l.OneWayLatency {
		t.Fatal("latency floor violated")
	}
}

func TestWANPresetMatchesPaperCommTimes(t *testing.T) {
	k := sim.New()
	l := WANPreset(k)
	// The paper's OPT round exchanges ~51.2 MB total and measures
	// ≈6.4 s of communication; one quarter of that payload should take
	// ≈1.6 s ± jitter.
	quarter := int64(128) << 20 / 10
	d := l.TransferDuration(quarter)
	if d < 1200*time.Millisecond || d > 2200*time.Millisecond {
		t.Fatalf("12.8 MB over WAN = %v, want ≈1.6 s", d)
	}
}

func TestTransferAdvancesSimTime(t *testing.T) {
	k := sim.New()
	l := WANPreset(k)
	var took time.Duration
	k.Spawn("xfer", func(p *sim.Proc) {
		took = l.Transfer(p, 8<<20)
		if p.Now() != took {
			t.Errorf("virtual time %v != transfer %v", p.Now(), took)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if took <= 0 {
		t.Fatal("no time charged")
	}
	st := l.Stats()
	if st.TotalTransfers != 1 || st.TotalBytes != 8<<20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNegativeBytesClamped(t *testing.T) {
	k := sim.New()
	l := LANPreset(k)
	k.Spawn("neg", func(p *sim.Proc) {
		l.Transfer(p, -5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().TotalBytes != 0 {
		t.Fatal("negative bytes counted")
	}
}

func TestContentionInflatesConcurrentTransfers(t *testing.T) {
	k := sim.New()
	l := WANPreset(k)
	l.JitterFraction = 0 // isolate the contention term
	const payload = 16 << 20

	var solo, contended time.Duration
	k.Spawn("solo", func(p *sim.Proc) {
		solo = l.Transfer(p, payload)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	k2 := sim.New()
	l2 := WANPreset(k2)
	l2.JitterFraction = 0
	for i := 0; i < 4; i++ {
		i := i
		k2.Spawn("c", func(p *sim.Proc) {
			d := l2.Transfer(p, payload)
			if i == 3 {
				contended = d
			}
		})
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if contended <= solo {
		t.Fatalf("no contention effect: %v vs %v", contended, solo)
	}
	// But mild, per the paper ("the impact is negligible").
	if float64(contended) > 1.2*float64(solo) {
		t.Fatalf("contention too strong: %v vs %v", contended, solo)
	}
}

func TestJitterIsDeterministic(t *testing.T) {
	mk := func() []time.Duration {
		k := sim.New()
		l := WANPreset(k)
		var out []time.Duration
		for i := 0; i < 5; i++ {
			out = append(out, l.TransferDuration(4<<20))
		}
		return out
	}
	a, b := mk(), mk()
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("jitter not reproducible across identical runs")
		}
		if i > 0 && a[i] != a[i-1] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced identical consecutive transfers")
	}
}

func TestLinkString(t *testing.T) {
	k := sim.New()
	if s := WANPreset(k).String(); !strings.Contains(s, "MiB/s") {
		t.Fatalf("String() = %q", s)
	}
}
