package split

import (
	"bytes"
	"math"
	"testing"

	"menos/internal/quant"
	"menos/internal/tensor"
)

// mustPack compresses t, failing the test on error.
func mustPack(t *testing.T, x *tensor.Tensor, c quant.Codec) *quant.Packed {
	t.Helper()
	p, err := quant.Pack(x, c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompressedPayloadRoundTrip: every tensor-carrying message type
// survives a frame round trip with a packed payload, with and without
// a trace ID riding the same ext tail, for both codecs.
func TestCompressedPayloadRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := tensor.NewNormal(rng, 1, 4, 6)
	for _, codec := range []quant.Codec{quant.CodecFP16, quant.CodecInt8} {
		for _, traceID := range []uint64{0, 0xfeed} {
			p := mustPack(t, x, codec)
			msgs := []Message{
				&ForwardReq{Iter: 1, Batch: 4, Seq: 6, TraceID: traceID, Packed: p},
				&ForwardResp{Iter: 1, TraceID: traceID, Packed: p},
				&BackwardReq{Iter: 1, Apply: true, TraceID: traceID, Packed: p},
				&BackwardResp{Iter: 1, TraceID: traceID, Packed: p},
			}
			for _, m := range msgs {
				raw := encodeFrame(t, m)
				if raw[2] != VersionExt {
					t.Fatalf("%v codec=%v: version byte %d, want %d", m.MsgType(), codec, raw[2], VersionExt)
				}
				got, err := ReadMessage(bytes.NewReader(raw))
				if err != nil {
					t.Fatalf("%v codec=%v: %v", m.MsgType(), codec, err)
				}
				var gotPacked *quant.Packed
				var gotTrace uint64
				var gotPlain *tensor.Tensor
				switch g := got.(type) {
				case *ForwardReq:
					gotPacked, gotTrace, gotPlain = g.Packed, g.TraceID, g.Activations
				case *ForwardResp:
					gotPacked, gotTrace, gotPlain = g.Packed, g.TraceID, g.Activations
				case *BackwardReq:
					gotPacked, gotTrace, gotPlain = g.Packed, g.TraceID, g.Gradients
				case *BackwardResp:
					gotPacked, gotTrace, gotPlain = g.Packed, g.TraceID, g.Gradients
				}
				if gotTrace != traceID {
					t.Fatalf("%v: trace %x, want %x", m.MsgType(), gotTrace, traceID)
				}
				if gotPlain != nil {
					t.Fatalf("%v: plain tensor rode the wire alongside the packed payload", m.MsgType())
				}
				y, err := Payload(gotPlain, gotPacked)
				if err != nil {
					t.Fatalf("%v: unpack: %v", m.MsgType(), err)
				}
				if !y.SameShape(x) {
					t.Fatalf("%v: shape %v, want %v", m.MsgType(), y.Shape(), x.Shape())
				}
				for i, v := range x.Data() {
					// Loose bound: both codecs keep |err| under 2% of
					// the row max for normal(0,1) data.
					if math.Abs(float64(y.Data()[i]-v)) > 0.05 {
						t.Fatalf("%v codec=%v: element %d: %v -> %v", m.MsgType(), codec, i, v, y.Data()[i])
					}
				}
			}
		}
	}
}

// TestPayloadHelper: the plain path passes through untouched and a
// corrupt packed payload fails rather than decoding garbage.
func TestPayloadHelper(t *testing.T) {
	x := tensor.New(2, 2)
	got, err := Payload(x, nil)
	if err != nil || got != x {
		t.Fatalf("plain payload: %v, %v", got, err)
	}
	bad := &quant.Packed{Codec: quant.CodecInt8, Shape: []int{2, 2}, Data: make([]byte, 1)}
	if _, err := Payload(nil, bad); err == nil {
		t.Fatal("corrupt packed payload accepted")
	}
}

// TestCompressedFrameShrinksOnWire pins the reason this feature
// exists: the whole int8 frame (header, ints, scales, everything) is
// at most 40% of its fp32 form, and fp16 at most 60%.
func TestCompressedFrameShrinksOnWire(t *testing.T) {
	rng := tensor.NewRNG(10)
	x := tensor.NewNormal(rng, 1, 8, 128)
	plain := len(encodeFrame(t, &ForwardReq{Iter: 1, Activations: x}))
	int8Frame := len(encodeFrame(t, &ForwardReq{Iter: 1, Packed: mustPack(t, x, quant.CodecInt8)}))
	fp16Frame := len(encodeFrame(t, &ForwardReq{Iter: 1, Packed: mustPack(t, x, quant.CodecFP16)}))
	if float64(int8Frame) > 0.4*float64(plain) {
		t.Fatalf("int8 frame %dB not <=40%% of fp32 frame %dB", int8Frame, plain)
	}
	if float64(fp16Frame) > 0.6*float64(plain) {
		t.Fatalf("fp16 frame %dB not <=60%% of fp32 frame %dB", fp16Frame, plain)
	}
}

// TestCompressionNegotiationIntersection: the feature bit follows the
// same Hello/HelloAck algebra as tracing and migration — the server
// acks the intersection and unknown future bits drop out.
func TestCompressionNegotiationIntersection(t *testing.T) {
	offered := FeatureActivationCompression | FeatureTraceContext | 1<<63
	acked := offered & (FeatureActivationCompression | FeatureTraceContext)
	raw := encodeFrame(t, &HelloAck{OK: true, Features: acked})
	got, err := ReadMessage(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if f := got.(*HelloAck).Features; f != FeatureActivationCompression|FeatureTraceContext {
		t.Fatalf("acked features %x", f)
	}
	// A legacy server that never decodes the ext tail acks nothing;
	// the client must fall back to plain fp32 frames, which stay
	// byte-identical Version 1 (TestZeroExtStaysVersion1).
	if FeatureActivationCompression&0 != 0 {
		t.Fatal("unreachable")
	}
}

// TestCompressedFrameIsVersionExt documents the interop hazard that
// negotiation prevents: a compressed frame is stamped VersionExt and
// carries no plain tensor, so a peer that has not acked the feature
// must never receive one.
func TestCompressedFrameIsVersionExt(t *testing.T) {
	rng := tensor.NewRNG(11)
	x := tensor.NewNormal(rng, 1, 2, 3)
	raw := encodeFrame(t, &ForwardReq{Iter: 1, Packed: mustPack(t, x, quant.CodecInt8)})
	if raw[2] != VersionExt {
		t.Fatalf("version byte %d, want %d", raw[2], VersionExt)
	}
}
