package split

import (
	"bytes"
	"testing"

	"menos/internal/adapter"
	"menos/internal/quant"
	"menos/internal/tensor"
)

// fuzzPack builds a small packed tensor for the seed corpus.
func fuzzPack(f *testing.F, rng *tensor.RNG, c quant.Codec) *quant.Packed {
	p, err := quant.Pack(tensor.NewNormal(rng, 1, 2, 3), c)
	if err != nil {
		f.Fatal(err)
	}
	return p
}

// FuzzReadMessage feeds arbitrary byte streams to the frame decoder.
// The invariant: ReadMessage either returns a message or an error —
// never panics, never reads past the frame. Run with
// `go test -fuzz FuzzReadMessage ./internal/split` to explore; the
// seed corpus (valid frames plus mutations) runs in normal `go test`.
func FuzzReadMessage(f *testing.F) {
	// Seed with every valid message type.
	rng := tensor.NewRNG(1)
	seeds := []Message{
		&Hello{ClientID: "a", ModelName: "m", Cut: 1,
			Adapter: adapter.LoRASpec(adapter.DefaultLoRA())},
		&HelloAck{OK: true, ForwardBytes: 1, BackwardBytes: 2},
		&ForwardReq{Iter: 1, Batch: 1, Seq: 2, Activations: tensor.NewNormal(rng, 1, 2, 3)},
		&ForwardResp{Iter: 1, Activations: tensor.NewNormal(rng, 1, 2, 3)},
		&BackwardReq{Iter: 1, Apply: true, Gradients: tensor.NewNormal(rng, 1, 2, 3)},
		&BackwardResp{Iter: 1, Gradients: tensor.NewNormal(rng, 1, 2, 3)},
		&Bye{},
		&ErrorMsg{Reason: "x"},
		// VersionExt frames: trace-context negotiation and propagation.
		&Hello{ClientID: "b", ModelName: "m", Cut: 1,
			Adapter:  adapter.LoRASpec(adapter.DefaultLoRA()),
			Features: FeatureTraceContext},
		&HelloAck{OK: true, Features: FeatureTraceContext},
		&ForwardReq{Iter: 2, Batch: 1, Seq: 2, TraceID: 0xdead,
			Activations: tensor.NewNormal(rng, 1, 2, 3)},
		&ForwardResp{Iter: 2, TraceID: 0xdead, Activations: tensor.NewNormal(rng, 1, 2, 3)},
		&BackwardReq{Iter: 2, TraceID: 0xbeef, Gradients: tensor.NewNormal(rng, 1, 2, 3)},
		&BackwardResp{Iter: 2, TraceID: 0xbeef, Gradients: tensor.NewNormal(rng, 1, 2, 3)},
		// Compressed-payload frames: the packed tensor rides the ext
		// tail (with and without a trace ID sharing it).
		&Hello{ClientID: "c", ModelName: "m", Cut: 1,
			Adapter:  adapter.LoRASpec(adapter.DefaultLoRA()),
			Features: FeatureTraceContext | FeatureActivationCompression},
		&HelloAck{OK: true, Features: FeatureActivationCompression},
		&ForwardReq{Iter: 3, Batch: 2, Seq: 3, Packed: fuzzPack(f, rng, quant.CodecInt8)},
		&ForwardResp{Iter: 3, TraceID: 0xdead, Packed: fuzzPack(f, rng, quant.CodecInt8)},
		&BackwardReq{Iter: 3, Apply: true, Packed: fuzzPack(f, rng, quant.CodecFP16)},
		&BackwardResp{Iter: 3, TraceID: 0xbeef, Packed: fuzzPack(f, rng, quant.CodecFP16)},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Hostile seeds.
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x4D, 1, 3, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A decoded message must re-encode cleanly.
		var buf bytes.Buffer
		if err := WriteMessage(&buf, msg); err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		back, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.MsgType() != msg.MsgType() {
			t.Fatalf("type changed across round trip: %v -> %v", msg.MsgType(), back.MsgType())
		}
	})
}
