package split

import (
	"menos/internal/adapter"
	"menos/internal/quant"
	"menos/internal/tensor"
)

// OptimizerConfig is the client's server-side optimizer choice (the
// server optimizes φ_s on the client's behalf, Algorithm 1 line 12).
type OptimizerConfig struct {
	Kind string // "adam", "sgd"
	LR   float64
}

// Hello is the first client message: the fine-tuning configuration the
// server needs for profiling (§3.3) — model, cut, adapter settings,
// batch geometry — plus a seed so the server-side adapter φ_s is
// initialized deterministically.
type Hello struct {
	ClientID    string
	ModelName   string
	Cut         int
	Adapter     adapter.Spec
	Optimizer   OptimizerConfig
	Batch       int
	Seq         int
	AdapterSeed uint64

	// Features offers protocol extensions (Feature* bits). Carried in
	// a VersionExt tail, so it is only on the wire when nonzero; an
	// old server never sees it and an old client never sends it.
	Features uint64

	// ResumeToken resumes a migrated session: it carries the token from
	// the Migrate redirect so the target server can match this dial to
	// the session snapshot the control plane staged for it. Appended to
	// the ext tail only when nonzero — a fresh dial's Hello stays
	// byte-identical to its pre-migration form, and only servers that
	// advertise FeatureMigration ever receive one.
	ResumeToken uint64
}

// MsgType implements Message.
func (*Hello) MsgType() MsgType { return TypeHello }

func (m *Hello) encode(e *encoder) {
	e.str(m.ClientID)
	e.str(m.ModelName)
	e.i64(int64(m.Cut))
	encodeSpec(e, m.Adapter)
	e.str(m.Optimizer.Kind)
	e.f64(m.Optimizer.LR)
	e.i64(int64(m.Batch))
	e.i64(int64(m.Seq))
	e.u64(m.AdapterSeed)
}

func (m *Hello) decode(d *decoder) {
	m.ClientID = d.str()
	m.ModelName = d.str()
	m.Cut = int(d.i64())
	m.Adapter = decodeSpec(d)
	m.Optimizer.Kind = d.str()
	m.Optimizer.LR = d.f64()
	m.Batch = int(d.i64())
	m.Seq = int(d.i64())
	m.AdapterSeed = d.u64()
}

func (m *Hello) extPresent() bool { return m.Features != 0 || m.ResumeToken != 0 }

func (m *Hello) encodeExt(e *encoder) {
	e.u64(m.Features)
	if m.ResumeToken != 0 {
		e.u64(m.ResumeToken)
	}
}

func (m *Hello) decodeExt(d *decoder) {
	m.Features = d.u64()
	// ResumeToken was appended to the ext tail after Features shipped;
	// decode it only when bytes remain so older frames stay valid.
	if d.err == nil && d.off < len(d.buf) {
		m.ResumeToken = d.u64()
	}
}

func encodeSpec(e *encoder, s adapter.Spec) {
	e.u8(uint8(s.Kind))
	e.i64(int64(s.Rank))
	e.f64(s.Alpha)
	e.u32(uint32(len(s.Targets)))
	for _, t := range s.Targets {
		e.u8(uint8(t))
	}
	e.i64(int64(s.PrefixLen))
	e.i64(int64(s.Hidden))
}

func decodeSpec(d *decoder) adapter.Spec {
	var s adapter.Spec
	s.Kind = adapter.Kind(d.u8())
	s.Rank = int(d.i64())
	s.Alpha = d.f64()
	n := int(d.u32())
	if n > 16 { // defensive bound; no adapter has more than 4 targets
		d.fail()
		return s
	}
	for i := 0; i < n; i++ {
		s.Targets = append(s.Targets, adapter.Target(d.u8()))
	}
	s.PrefixLen = int(d.i64())
	s.Hidden = int(d.i64())
	return s
}

// HelloAck reports profiling results (or rejection) back to the
// client. A rejection with Retryable set is transient — the server is
// shedding load, not refusing the configuration — and the client
// should redial after RetryAfterMs.
type HelloAck struct {
	OK bool
	// ForwardBytes / BackwardBytes are the profiled memory demands the
	// server measured for this client.
	ForwardBytes  int64
	BackwardBytes int64
	Reason        string // set when !OK
	// Retryable marks an overload rejection; RetryAfterMs is the
	// server's backoff hint in milliseconds.
	Retryable    bool
	RetryAfterMs int64

	// Features echoes the subset of the client's offered Feature* bits
	// the server accepted (VersionExt tail; absent on the wire when
	// zero, so an old client is unaffected).
	Features uint64
}

// MsgType implements Message.
func (*HelloAck) MsgType() MsgType { return TypeHelloAck }

func (m *HelloAck) encode(e *encoder) {
	e.bool(m.OK)
	e.i64(m.ForwardBytes)
	e.i64(m.BackwardBytes)
	e.str(m.Reason)
	e.bool(m.Retryable)
	e.i64(m.RetryAfterMs)
}

func (m *HelloAck) decode(d *decoder) {
	m.OK = d.bool()
	m.ForwardBytes = d.i64()
	m.BackwardBytes = d.i64()
	m.Reason = d.str()
	m.Retryable = d.bool()
	m.RetryAfterMs = d.i64()
}

func (m *HelloAck) extPresent() bool     { return m.Features != 0 }
func (m *HelloAck) encodeExt(e *encoder) { e.u64(m.Features) }
func (m *HelloAck) decodeExt(d *decoder) { m.Features = d.u64() }

// ForwardReq carries the client's intermediate activations x_c
// (step 1 of §2.2).
type ForwardReq struct {
	Iter        int
	Batch, Seq  int
	Activations *tensor.Tensor

	// TraceID is the client iteration's trace context, propagated when
	// FeatureTraceContext was negotiated (VersionExt tail; absent on
	// the wire when zero).
	TraceID uint64

	// Packed carries the activations codec-compressed when
	// FeatureActivationCompression was negotiated; the base payload
	// then writes its tensor-absent marker. Appended to the ext tail
	// after TraceID, so an uncompressed frame stays byte-identical to
	// its pre-compression form.
	Packed *quant.Packed
}

// MsgType implements Message.
func (*ForwardReq) MsgType() MsgType { return TypeForwardReq }

func (m *ForwardReq) encode(e *encoder) {
	e.i64(int64(m.Iter))
	e.i64(int64(m.Batch))
	e.i64(int64(m.Seq))
	if m.Packed != nil {
		e.tensor(nil)
	} else {
		e.tensor(m.Activations)
	}
}

func (m *ForwardReq) decode(d *decoder) {
	m.Iter = int(d.i64())
	m.Batch = int(d.i64())
	m.Seq = int(d.i64())
	m.Activations = d.tensor()
}

func (m *ForwardReq) extPresent() bool { return m.TraceID != 0 || m.Packed != nil }
func (m *ForwardReq) encodeExt(e *encoder) {
	e.u64(m.TraceID)
	if m.Packed != nil {
		e.packed(m.Packed)
	}
}
func (m *ForwardReq) decodeExt(d *decoder) {
	m.TraceID = d.u64()
	// The compressed payload was appended after TraceID shipped;
	// decode it only when bytes remain so older frames stay valid.
	if d.err == nil && d.off < len(d.buf) {
		m.Packed = d.packed()
	}
}

// ForwardResp returns the server activations x_s (step 2).
type ForwardResp struct {
	Iter        int
	Activations *tensor.Tensor

	// TraceID echoes the request's trace context back to the client.
	TraceID uint64

	// Packed: codec-compressed activations (see ForwardReq.Packed).
	Packed *quant.Packed
}

// MsgType implements Message.
func (*ForwardResp) MsgType() MsgType { return TypeForwardResp }

func (m *ForwardResp) encode(e *encoder) {
	e.i64(int64(m.Iter))
	if m.Packed != nil {
		e.tensor(nil)
	} else {
		e.tensor(m.Activations)
	}
}

func (m *ForwardResp) decode(d *decoder) {
	m.Iter = int(d.i64())
	m.Activations = d.tensor()
}

func (m *ForwardResp) extPresent() bool { return m.TraceID != 0 || m.Packed != nil }
func (m *ForwardResp) encodeExt(e *encoder) {
	e.u64(m.TraceID)
	if m.Packed != nil {
		e.packed(m.Packed)
	}
}
func (m *ForwardResp) decodeExt(d *decoder) {
	m.TraceID = d.u64()
	if d.err == nil && d.off < len(d.buf) {
		m.Packed = d.packed()
	}
}

// BackwardReq carries the client's gradients g_c at the upper cut
// (step 3). Apply=false accumulates the server-side adapter gradients
// without an optimizer step (gradient accumulation / micro-batching);
// Apply=true steps the optimizer with everything accumulated so far.
type BackwardReq struct {
	Iter      int
	Apply     bool
	Gradients *tensor.Tensor

	// TraceID is the client iteration's trace context (see ForwardReq).
	TraceID uint64

	// Packed: codec-compressed gradients (see ForwardReq.Packed).
	Packed *quant.Packed
}

// MsgType implements Message.
func (*BackwardReq) MsgType() MsgType { return TypeBackwardReq }

func (m *BackwardReq) encode(e *encoder) {
	e.i64(int64(m.Iter))
	e.bool(m.Apply)
	if m.Packed != nil {
		e.tensor(nil)
	} else {
		e.tensor(m.Gradients)
	}
}

func (m *BackwardReq) decode(d *decoder) {
	m.Iter = int(d.i64())
	m.Apply = d.bool()
	m.Gradients = d.tensor()
}

func (m *BackwardReq) extPresent() bool { return m.TraceID != 0 || m.Packed != nil }
func (m *BackwardReq) encodeExt(e *encoder) {
	e.u64(m.TraceID)
	if m.Packed != nil {
		e.packed(m.Packed)
	}
}
func (m *BackwardReq) decodeExt(d *decoder) {
	m.TraceID = d.u64()
	if d.err == nil && d.off < len(d.buf) {
		m.Packed = d.packed()
	}
}

// BackwardResp returns the server gradients g_s at the lower cut
// (step 4).
type BackwardResp struct {
	Iter      int
	Gradients *tensor.Tensor

	// TraceID echoes the request's trace context back to the client.
	TraceID uint64

	// Packed: codec-compressed gradients (see ForwardReq.Packed).
	Packed *quant.Packed
}

// MsgType implements Message.
func (*BackwardResp) MsgType() MsgType { return TypeBackwardResp }

func (m *BackwardResp) encode(e *encoder) {
	e.i64(int64(m.Iter))
	if m.Packed != nil {
		e.tensor(nil)
	} else {
		e.tensor(m.Gradients)
	}
}

func (m *BackwardResp) decode(d *decoder) {
	m.Iter = int(d.i64())
	m.Gradients = d.tensor()
}

func (m *BackwardResp) extPresent() bool { return m.TraceID != 0 || m.Packed != nil }
func (m *BackwardResp) encodeExt(e *encoder) {
	e.u64(m.TraceID)
	if m.Packed != nil {
		e.packed(m.Packed)
	}
}
func (m *BackwardResp) decodeExt(d *decoder) {
	m.TraceID = d.u64()
	if d.err == nil && d.off < len(d.buf) {
		m.Packed = d.packed()
	}
}

// Bye announces a clean client departure so the server releases the
// instance immediately.
type Bye struct{}

// MsgType implements Message.
func (*Bye) MsgType() MsgType { return TypeBye }

func (m *Bye) encode(*encoder) {}
func (m *Bye) decode(*decoder) {}

// ErrorMsg reports a server-side failure for the current request.
// Retryable errors (admission-control overload) leave the session
// intact: the server keeps the connection open and the client may
// resubmit the same request after RetryAfterMs.
type ErrorMsg struct {
	Reason string
	// Retryable marks a transient overload rejection rather than a
	// hard failure; RetryAfterMs carries the backoff hint.
	Retryable    bool
	RetryAfterMs int64
}

// MsgType implements Message.
func (*ErrorMsg) MsgType() MsgType { return TypeError }

func (m *ErrorMsg) encode(e *encoder) {
	e.str(m.Reason)
	e.bool(m.Retryable)
	e.i64(m.RetryAfterMs)
}

func (m *ErrorMsg) decode(d *decoder) {
	m.Reason = d.str()
	m.Retryable = d.bool()
	m.RetryAfterMs = d.i64()
}

// Interface conformance.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*HelloAck)(nil)
	_ Message = (*ForwardReq)(nil)
	_ Message = (*ForwardResp)(nil)
	_ Message = (*BackwardReq)(nil)
	_ Message = (*BackwardResp)(nil)
	_ Message = (*Bye)(nil)
	_ Message = (*ErrorMsg)(nil)

	_ extMessage = (*Hello)(nil)
	_ extMessage = (*HelloAck)(nil)
	_ extMessage = (*ForwardReq)(nil)
	_ extMessage = (*ForwardResp)(nil)
	_ extMessage = (*BackwardReq)(nil)
	_ extMessage = (*BackwardResp)(nil)
)

// MigrateMsg redirects the client to another server. Sent in place of
// a ForwardResp when the control plane has moved the session (the
// displaced ForwardReq is replayed against the target, so the
// iteration is not lost), and only on sessions that negotiated
// FeatureMigration. Target is the new server's dial address; Token
// must be presented in the redial's Hello.ResumeToken so the target
// can match the connection to the staged session snapshot.
type MigrateMsg struct {
	Target string
	Token  uint64
}

// MsgType implements Message.
func (*MigrateMsg) MsgType() MsgType { return TypeMigrate }

func (m *MigrateMsg) encode(e *encoder) {
	e.str(m.Target)
	e.u64(m.Token)
}

func (m *MigrateMsg) decode(d *decoder) {
	m.Target = d.str()
	m.Token = d.u64()
}

// Interface conformance.
var _ Message = (*MigrateMsg)(nil)

// DecodeOpen starts an incremental (KV-cached) split decoding session
// for up to Capacity positions. The server reserves the body-side KV
// cache from its memory scheduler for the session's lifetime — the
// inference-time analogue of the training-time 𝕀 management.
type DecodeOpen struct {
	Capacity int
}

// MsgType implements Message.
func (*DecodeOpen) MsgType() MsgType { return TypeDecodeOpen }

func (m *DecodeOpen) encode(e *encoder) { e.i64(int64(m.Capacity)) }
func (m *DecodeOpen) decode(d *decoder) { m.Capacity = int(d.i64()) }

// DecodeAck accepts or rejects a decode session, reporting the KV
// bytes reserved server-side.
type DecodeAck struct {
	OK      bool
	KVBytes int64
	Reason  string
}

// MsgType implements Message.
func (*DecodeAck) MsgType() MsgType { return TypeDecodeAck }

func (m *DecodeAck) encode(e *encoder) {
	e.bool(m.OK)
	e.i64(m.KVBytes)
	e.str(m.Reason)
}

func (m *DecodeAck) decode(d *decoder) {
	m.OK = d.bool()
	m.KVBytes = d.i64()
	m.Reason = d.str()
}

// DecodeReq advances the session by one position with the client's
// (1, dim) input-section activation.
type DecodeReq struct {
	Pos        int
	Activation *tensor.Tensor
}

// MsgType implements Message.
func (*DecodeReq) MsgType() MsgType { return TypeDecodeReq }

func (m *DecodeReq) encode(e *encoder) {
	e.i64(int64(m.Pos))
	e.tensor(m.Activation)
}

func (m *DecodeReq) decode(d *decoder) {
	m.Pos = int(d.i64())
	m.Activation = d.tensor()
}

// DecodeResp returns the body output for one position.
type DecodeResp struct {
	Pos        int
	Activation *tensor.Tensor
}

// MsgType implements Message.
func (*DecodeResp) MsgType() MsgType { return TypeDecodeResp }

func (m *DecodeResp) encode(e *encoder) {
	e.i64(int64(m.Pos))
	e.tensor(m.Activation)
}

func (m *DecodeResp) decode(d *decoder) {
	m.Pos = int(d.i64())
	m.Activation = d.tensor()
}

// DecodeClose ends the session, releasing the server-side KV reserve.
type DecodeClose struct{}

// MsgType implements Message.
func (*DecodeClose) MsgType() MsgType { return TypeDecodeClose }

func (m *DecodeClose) encode(*encoder) {}
func (m *DecodeClose) decode(*decoder) {}

// Interface conformance for the decode messages.
var (
	_ Message = (*DecodeOpen)(nil)
	_ Message = (*DecodeAck)(nil)
	_ Message = (*DecodeReq)(nil)
	_ Message = (*DecodeResp)(nil)
	_ Message = (*DecodeClose)(nil)
)
