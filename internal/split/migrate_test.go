package split

import (
	"bytes"
	"testing"
)

func TestMigrateMsgRoundTrip(t *testing.T) {
	m := &MigrateMsg{Target: "127.0.0.1:7411", Token: 0xdeadbeefcafe}
	got, ok := roundTrip(t, m).(*MigrateMsg)
	if !ok {
		t.Fatalf("round trip returned %T", got)
	}
	if got.Target != m.Target || got.Token != m.Token {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

// TestHelloResumeTokenRoundTrip: a redial Hello carries the migration
// token in its ext tail and survives the trip.
func TestHelloResumeTokenRoundTrip(t *testing.T) {
	m := &Hello{
		ClientID:    "c1",
		ModelName:   "m",
		Features:    FeatureTraceContext | FeatureMigration,
		ResumeToken: 0xabc123,
	}
	raw := encodeFrame(t, m)
	if raw[2] != VersionExt {
		t.Fatalf("version byte %d, want %d", raw[2], VersionExt)
	}
	got, err := ReadMessage(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	h := got.(*Hello)
	if h.Features != m.Features || h.ResumeToken != m.ResumeToken {
		t.Fatalf("got features=%x token=%x, want %x/%x",
			h.Features, h.ResumeToken, m.Features, m.ResumeToken)
	}
}

// TestHelloResumeTokenWithoutFeatures: the token alone forces the ext
// tail (Features rides along as zero).
func TestHelloResumeTokenWithoutFeatures(t *testing.T) {
	m := &Hello{ClientID: "c1", ModelName: "m", ResumeToken: 7}
	raw := encodeFrame(t, m)
	if raw[2] != VersionExt {
		t.Fatalf("version byte %d, want %d", raw[2], VersionExt)
	}
	h := mustRead(t, raw).(*Hello)
	if h.Features != 0 || h.ResumeToken != 7 {
		t.Fatalf("got features=%x token=%x, want 0/7", h.Features, h.ResumeToken)
	}
}

// TestHelloShortExtTailStillDecodes is the interop pin for the tail
// extension: a Hello whose ext carries only Features (the pre-
// migration wire form) must still decode, with ResumeToken zero. This
// is what a build from before the migration feature puts on the wire.
func TestHelloShortExtTailStillDecodes(t *testing.T) {
	// Build the old-style frame by hand: base payload + 8-byte tail.
	m := &Hello{ClientID: "c1", ModelName: "m", Features: FeatureTraceContext}
	raw := encodeFrame(t, m) // encoder omits ResumeToken when zero — the old form
	h := mustRead(t, raw).(*Hello)
	if h.Features != FeatureTraceContext || h.ResumeToken != 0 {
		t.Fatalf("got features=%x token=%x, want %x/0",
			h.Features, h.ResumeToken, FeatureTraceContext)
	}
}

func mustRead(t *testing.T, raw []byte) Message {
	t.Helper()
	m, err := ReadMessage(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return m
}
