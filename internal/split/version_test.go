package split

import (
	"bytes"
	"errors"
	"testing"

	"menos/internal/tensor"
)

// encodeFrame returns the raw frame bytes for m.
func encodeFrame(t *testing.T, m Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExtFieldsRoundTrip: every trace-context field survives a round
// trip, and carrying one stamps the frame VersionExt.
func TestExtFieldsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(4)
	act := tensor.NewNormal(rng, 1, 2, 3)
	cases := []struct {
		name string
		msg  Message
		get  func(Message) uint64
	}{
		{"hello", &Hello{ClientID: "a", ModelName: "m", Features: FeatureTraceContext},
			func(m Message) uint64 { return m.(*Hello).Features }},
		{"hello-ack", &HelloAck{OK: true, Features: FeatureTraceContext},
			func(m Message) uint64 { return m.(*HelloAck).Features }},
		{"forward-req", &ForwardReq{Iter: 1, Activations: act, TraceID: 0xfeed},
			func(m Message) uint64 { return m.(*ForwardReq).TraceID }},
		{"forward-resp", &ForwardResp{Iter: 1, Activations: act, TraceID: 0xfeed},
			func(m Message) uint64 { return m.(*ForwardResp).TraceID }},
		{"backward-req", &BackwardReq{Iter: 1, Gradients: act, TraceID: 0xfeed},
			func(m Message) uint64 { return m.(*BackwardReq).TraceID }},
		{"backward-resp", &BackwardResp{Iter: 1, Gradients: act, TraceID: 0xfeed},
			func(m Message) uint64 { return m.(*BackwardResp).TraceID }},
	}
	for _, c := range cases {
		raw := encodeFrame(t, c.msg)
		if raw[2] != VersionExt {
			t.Fatalf("%s: version byte %d, want %d", c.name, raw[2], VersionExt)
		}
		got, err := ReadMessage(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if want := c.get(c.msg); c.get(got) != want {
			t.Fatalf("%s: ext field %x, want %x", c.name, c.get(got), want)
		}
	}
}

// TestZeroExtStaysVersion1 is the interop guarantee: a message whose
// trace-context fields are zero encodes as a plain Version-1 frame —
// the version byte an old peer insists on, with no extension tail (the
// old decoder's strict trailing-bytes check would reject any). A
// tracing-capable build talking to an old peer therefore produces
// byte-identical wire traffic.
func TestZeroExtStaysVersion1(t *testing.T) {
	rng := tensor.NewRNG(4)
	act := tensor.NewNormal(rng, 1, 2, 3)
	for _, m := range []Message{
		&Hello{ClientID: "a", ModelName: "m"},
		&HelloAck{OK: true, ForwardBytes: 1},
		&ForwardReq{Iter: 1, Activations: act},
		&ForwardResp{Iter: 1, Activations: act},
		&BackwardReq{Iter: 1, Apply: true, Gradients: act},
		&BackwardResp{Iter: 1, Gradients: act},
	} {
		raw := encodeFrame(t, m)
		if raw[2] != Version {
			t.Fatalf("%v: version byte %d, want %d", m.MsgType(), raw[2], Version)
		}
		if _, err := ReadMessage(bytes.NewReader(raw)); err != nil {
			t.Fatalf("%v: %v", m.MsgType(), err)
		}
	}
}

// TestVersionExtFrameWithoutTail: a VersionExt frame whose payload has
// no extension tail is legal (equivalent to its Version-1 form).
func TestVersionExtFrameWithoutTail(t *testing.T) {
	raw := encodeFrame(t, &ForwardReq{Iter: 3})
	raw[2] = VersionExt
	got, err := ReadMessage(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if fr := got.(*ForwardReq); fr.Iter != 3 || fr.TraceID != 0 {
		t.Fatalf("decoded %+v", fr)
	}
}

// TestVersionExtTailOnNonExtMessage: trailing bytes on a VersionExt
// frame of a message type with no extension are still rejected — the
// tail mechanism does not loosen frame validation elsewhere.
func TestVersionExtTailOnNonExtMessage(t *testing.T) {
	raw := encodeFrame(t, &ErrorMsg{Reason: ""})
	raw[3] = byte(TypeBye) // Bye decodes nothing, leaving the 4 length bytes
	raw[2] = VersionExt    // even at the extension version
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

// TestLegacyPeerWouldRejectExtFrames documents why negotiation gates
// the ext fields: a frame that actually carries trace context is
// stamped VersionExt, which a strict Version-1 decoder rejects — so
// the client must never send one before the server acks the feature.
func TestLegacyPeerWouldRejectExtFrames(t *testing.T) {
	raw := encodeFrame(t, &ForwardReq{Iter: 1, TraceID: 0xabc})
	if raw[2] != VersionExt {
		t.Fatalf("version byte %d, want %d", raw[2], VersionExt)
	}
	// Simulate the legacy check: version != 1 is a bad frame.
	if raw[2] == Version {
		t.Fatal("ext frame impersonates version 1")
	}
}

// TestFeatureNegotiationIntersection: the documented negotiation
// algebra — server acks the intersection, unknown client bits drop out.
func TestFeatureNegotiationIntersection(t *testing.T) {
	offered := FeatureTraceContext | 1<<63 // future bit this build ignores
	acked := offered & FeatureTraceContext
	raw := encodeFrame(t, &HelloAck{OK: true, Features: acked})
	got, err := ReadMessage(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.(*HelloAck).Features != FeatureTraceContext {
		t.Fatalf("acked features %x", got.(*HelloAck).Features)
	}
}
