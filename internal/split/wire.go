// Package split defines the wire protocol between split fine-tuning
// clients and the server: length-prefixed binary frames carrying the
// §2.2 message flow (hello/profile, forward activations, backward
// gradients) plus error reporting. The encoding is hand-rolled on
// encoding/binary — no reflection — so activation payloads (megabytes
// per iteration) serialize at memory-copy speed.
package split

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"menos/internal/quant"
	"menos/internal/tensor"
)

// Protocol constants.
const (
	// Magic marks the start of every frame.
	Magic uint16 = 0x4D53 // "MS"
	// Version is the base protocol version. Version-1 peers reject
	// anything else, so a frame is only ever written at a higher
	// version when it actually carries extension content.
	Version uint8 = 1
	// VersionExt adds an optional extension tail after the base
	// payload (trace context today). A frame is emitted at VersionExt
	// only when its extension fields are non-empty; otherwise the bytes
	// on the wire are identical to a Version-1 frame, which is what
	// lets a new peer interoperate with an old one.
	VersionExt uint8 = 2
	// MaxFrameBytes bounds a frame payload; larger frames indicate a
	// corrupt or hostile stream.
	MaxFrameBytes = 512 << 20

	headerSize = 8 // magic(2) + version(1) + type(1) + length(4)
)

// Feature bits negotiated in Hello/HelloAck (VersionExt frames). The
// client offers its feature set; the server acks the intersection it
// supports. A Version-1 peer never sees them and the negotiation
// silently resolves to "none".
const (
	// FeatureTraceContext: ForwardReq/BackwardReq carry the client
	// iteration's trace ID and the responses echo it, so both sides'
	// span buffers share IDs (docs/OBSERVABILITY.md, "Distributed
	// tracing").
	FeatureTraceContext uint64 = 1 << 0

	// FeatureMigration: the server may answer a ForwardReq with a
	// Migrate frame redirecting the client to another server. The
	// client's session state travels out of band over the control
	// plane; the client redials the target with the Migrate token in
	// Hello.ResumeToken and replays the forward the redirect displaced,
	// so no iteration is lost (docs/FLEET.md, "Live migration").
	FeatureMigration uint64 = 1 << 1

	// FeatureActivationCompression: the activation/gradient tensors in
	// ForwardReq/Resp and BackwardReq/Resp may ride the extension tail
	// codec-compressed (fp16 or int8 per-row, internal/quant) instead
	// of the base payload's fp32 tensor. Either side only sends a
	// compressed payload after the bit survives the Hello/HelloAck
	// intersection, so a legacy peer never sees one (docs/WIRE.md).
	FeatureActivationCompression uint64 = 1 << 2
)

// Errors reported by the codec.
var (
	ErrBadFrame  = errors.New("split: malformed frame")
	ErrTooLarge  = errors.New("split: frame exceeds size limit")
	ErrShortRead = errors.New("split: truncated payload")
)

// MsgType identifies a protocol message.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeHelloAck
	TypeForwardReq
	TypeForwardResp
	TypeBackwardReq
	TypeBackwardResp
	TypeBye
	TypeError
	TypeDecodeOpen
	TypeDecodeAck
	TypeDecodeReq
	TypeDecodeResp
	TypeDecodeClose
	TypeMigrate
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeHelloAck:
		return "hello-ack"
	case TypeForwardReq:
		return "forward-req"
	case TypeForwardResp:
		return "forward-resp"
	case TypeBackwardReq:
		return "backward-req"
	case TypeBackwardResp:
		return "backward-resp"
	case TypeBye:
		return "bye"
	case TypeError:
		return "error"
	case TypeDecodeOpen:
		return "decode-open"
	case TypeDecodeAck:
		return "decode-ack"
	case TypeDecodeReq:
		return "decode-req"
	case TypeDecodeResp:
		return "decode-resp"
	case TypeDecodeClose:
		return "decode-close"
	case TypeMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Message is one protocol frame payload.
type Message interface {
	MsgType() MsgType
	encode(w *encoder)
	decode(r *decoder)
}

// extMessage is a message with an optional VersionExt tail. The tail
// is appended after the base payload and only when extPresent reports
// non-empty content; the frame header is then stamped VersionExt so a
// same-version peer knows to decode it. With empty extension content
// the frame is byte-identical to Version 1 — an old peer never sees a
// version it would reject.
type extMessage interface {
	Message
	extPresent() bool
	encodeExt(e *encoder)
	decodeExt(d *decoder)
}

// WriteMessage frames and writes m.
func WriteMessage(w io.Writer, m Message) error {
	var enc encoder
	m.encode(&enc)
	version := Version
	if xm, ok := m.(extMessage); ok && xm.extPresent() {
		xm.encodeExt(&enc)
		version = VersionExt
	}
	payload := enc.buf
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	header := make([]byte, headerSize)
	binary.LittleEndian.PutUint16(header[0:], Magic)
	header[2] = version
	header[3] = byte(m.MsgType())
	binary.LittleEndian.PutUint32(header[4:], uint32(len(payload)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("split: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("split: write payload: %w", err)
	}
	return nil
}

// ReadMessage reads and decodes one frame. Versions 1 through
// VersionExt are accepted; an extension tail on a VersionExt frame is
// decoded when present (a VersionExt frame without one is legal and
// equivalent to its Version-1 form).
func ReadMessage(r io.Reader) (Message, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("split: read header: %w", err)
	}
	if binary.LittleEndian.Uint16(header[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	version := header[2]
	if version < Version || version > VersionExt {
		return nil, fmt.Errorf("%w: version %d, want %d..%d", ErrBadFrame, version, Version, VersionExt)
	}
	msgType := MsgType(header[3])
	length := binary.LittleEndian.Uint32(header[4:])
	if length > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("split: read payload: %w", err)
	}
	m, err := newMessage(msgType)
	if err != nil {
		return nil, err
	}
	dec := decoder{buf: payload}
	m.decode(&dec)
	if version >= VersionExt && dec.err == nil && dec.off < len(payload) {
		if xm, ok := m.(extMessage); ok {
			xm.decodeExt(&dec)
		}
	}
	if dec.err != nil {
		return nil, fmt.Errorf("split: decode %v: %w", msgType, dec.err)
	}
	if dec.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes in %v", ErrBadFrame, len(payload)-dec.off, msgType)
	}
	return m, nil
}

func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeHelloAck:
		return &HelloAck{}, nil
	case TypeForwardReq:
		return &ForwardReq{}, nil
	case TypeForwardResp:
		return &ForwardResp{}, nil
	case TypeBackwardReq:
		return &BackwardReq{}, nil
	case TypeBackwardResp:
		return &BackwardResp{}, nil
	case TypeBye:
		return &Bye{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeDecodeOpen:
		return &DecodeOpen{}, nil
	case TypeDecodeAck:
		return &DecodeAck{}, nil
	case TypeDecodeReq:
		return &DecodeReq{}, nil
	case TypeDecodeResp:
		return &DecodeResp{}, nil
	case TypeDecodeClose:
		return &DecodeClose{}, nil
	case TypeMigrate:
		return &MigrateMsg{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, int(t))
	}
}

// encoder builds a payload buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool)  { e.u8(map[bool]uint8{false: 0, true: 1}[v]) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) ints(vs []int) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i64(int64(v))
	}
}
func (e *encoder) floats(vs []float32) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u32(math.Float32bits(v))
	}
}
func (e *encoder) tensor(t *tensor.Tensor) {
	if t == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.ints(t.Shape())
	e.floats(t.Data())
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// packed writes a codec-compressed tensor: codec byte, shape, per-row
// scales, packed data. Only ever emitted on sessions that negotiated
// FeatureActivationCompression.
func (e *encoder) packed(p *quant.Packed) {
	e.u8(uint8(p.Codec))
	e.ints(p.Shape)
	e.floats(p.Scales)
	e.bytes(p.Data)
}

// decoder consumes a payload buffer, latching the first error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrShortRead
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}
func (d *decoder) bool() bool { return d.u8() != 0 }
func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}
func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}
func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}
func (d *decoder) ints() []int {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > len(d.buf) {
		d.fail()
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(d.i64())
	}
	return vs
}
func (d *decoder) floats() []float32 {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+4*n > len(d.buf) {
		d.fail()
		return nil
	}
	vs := make([]float32, n)
	for i := range vs {
		vs[i] = math.Float32frombits(d.u32())
	}
	return vs
}
func (d *decoder) tensor() *tensor.Tensor {
	if d.u8() == 0 {
		return nil
	}
	shape := d.ints()
	data := d.floats()
	if d.err != nil {
		return nil
	}
	t, err := tensor.FromSlice(data, shape...)
	if err != nil {
		d.err = err
		return nil
	}
	return t
}
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return b
}

// packed reads a codec-compressed tensor. The struct is returned as
// decoded — length/shape consistency is validated by
// quant.Packed.Unpack, which treats it as untrusted input.
func (d *decoder) packed() *quant.Packed {
	p := &quant.Packed{Codec: quant.Codec(d.u8())}
	p.Shape = d.ints()
	p.Scales = d.floats()
	p.Data = d.bytes()
	if d.err != nil {
		return nil
	}
	return p
}

// Payload resolves a message's tensor payload: the compressed form
// when present (unpacked to fp32), the plain tensor otherwise.
func Payload(plain *tensor.Tensor, packed *quant.Packed) (*tensor.Tensor, error) {
	if packed != nil {
		return packed.Unpack()
	}
	return plain, nil
}
