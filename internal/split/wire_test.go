package split

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"menos/internal/adapter"
	"menos/internal/tensor"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MsgType() != m.MsgType() {
		t.Fatalf("type %v != %v", got.MsgType(), m.MsgType())
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	m := &Hello{
		ClientID:  "client-7",
		ModelName: "llama-tiny",
		Cut:       2,
		Adapter: adapter.Spec{
			Kind: adapter.KindLoRA, Rank: 8, Alpha: 16,
			Targets: []adapter.Target{adapter.TargetQ, adapter.TargetV},
		},
		Optimizer:   OptimizerConfig{Kind: "adam", LR: 3e-4},
		Batch:       4,
		Seq:         128,
		AdapterSeed: 0xdeadbeef,
	}
	got := roundTrip(t, m).(*Hello)
	if got.ClientID != m.ClientID || got.ModelName != m.ModelName || got.Cut != m.Cut {
		t.Fatalf("identity fields: %+v", got)
	}
	if got.Adapter.Kind != adapter.KindLoRA || got.Adapter.Rank != 8 ||
		got.Adapter.Alpha != 16 || len(got.Adapter.Targets) != 2 {
		t.Fatalf("adapter spec: %+v", got.Adapter)
	}
	if got.Optimizer.LR != 3e-4 || got.Optimizer.Kind != "adam" {
		t.Fatalf("optimizer: %+v", got.Optimizer)
	}
	if got.AdapterSeed != 0xdeadbeef || got.Batch != 4 || got.Seq != 128 {
		t.Fatalf("config: %+v", got)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	got := roundTrip(t, &HelloAck{OK: false, ForwardBytes: 123, BackwardBytes: 456, Reason: "no memory"}).(*HelloAck)
	if got.OK || got.ForwardBytes != 123 || got.BackwardBytes != 456 || got.Reason != "no memory" {
		t.Fatalf("ack: %+v", got)
	}
}

func TestTensorMessagesRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	act := tensor.NewNormal(rng, 1, 3, 5)
	got := roundTrip(t, &ForwardReq{Iter: 9, Batch: 1, Seq: 3, Activations: act}).(*ForwardReq)
	if got.Iter != 9 || got.Batch != 1 || got.Seq != 3 {
		t.Fatalf("fields: %+v", got)
	}
	if !got.Activations.SameShape(act) {
		t.Fatalf("shape %v", got.Activations.Shape())
	}
	for i := range act.Data() {
		if got.Activations.Data()[i] != act.Data()[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}

	grads := tensor.NewNormal(rng, 1, 2, 4)
	gotB := roundTrip(t, &BackwardReq{Iter: 2, Gradients: grads}).(*BackwardReq)
	if gotB.Gradients.Len() != grads.Len() {
		t.Fatal("gradients lost")
	}
	roundTrip(t, &ForwardResp{Iter: 1, Activations: act})
	roundTrip(t, &BackwardResp{Iter: 1, Gradients: grads})
}

func TestNilTensorRoundTrip(t *testing.T) {
	got := roundTrip(t, &ForwardReq{Iter: 1}).(*ForwardReq)
	if got.Activations != nil {
		t.Fatal("nil tensor not preserved")
	}
}

func TestByeAndErrorRoundTrip(t *testing.T) {
	roundTrip(t, &Bye{})
	got := roundTrip(t, &ErrorMsg{Reason: "boom"}).(*ErrorMsg)
	if got.Reason != "boom" {
		t.Fatalf("reason %q", got.Reason)
	}
}

func TestBadMagicRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Bye{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] = 0xFF
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Bye{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Bye{}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[3] = 200
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	header := make([]byte, headerSize)
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Bye{}); err != nil {
		t.Fatal(err)
	}
	copy(header, buf.Bytes()[:headerSize])
	header[4] = 0xFF
	header[5] = 0xFF
	header[6] = 0xFF
	header[7] = 0x7F
	if _, err := ReadMessage(bytes.NewReader(header)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedPayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	rng := tensor.NewRNG(2)
	if err := WriteMessage(&buf, &ForwardReq{Activations: tensor.NewNormal(rng, 1, 4, 4)}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadMessage(bytes.NewReader(raw[:len(raw)-8])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	// Craft a Bye frame claiming a 4-byte payload.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &ErrorMsg{Reason: ""}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[3] = byte(TypeBye) // Bye decodes nothing, leaving 4 bytes
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestCorruptPayloadNoPanic(t *testing.T) {
	// Fuzz-ish: any byte soup after a valid header must error, never
	// panic.
	f := func(body []byte, typeSeed uint8) bool {
		msgType := MsgType(typeSeed%13 + 1)
		if len(body) > 1<<16 {
			body = body[:1<<16]
		}
		var buf bytes.Buffer
		header := make([]byte, headerSize)
		header[0] = 0x53
		header[1] = 0x4D
		header[2] = Version
		header[3] = byte(msgType)
		header[4] = byte(len(body))
		header[5] = byte(len(body) >> 8)
		buf.Write(header)
		buf.Write(body)
		_, err := ReadMessage(&buf)
		// Either decodes (harmless) or errors; must not panic.
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every message survives a pipe round-trip through sequential
// writes (stream framing works for back-to-back messages).
func TestStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	rng := tensor.NewRNG(3)
	msgs := []Message{
		&Hello{ClientID: "a", ModelName: "m", Cut: 1, Adapter: adapter.LoRASpec(adapter.DefaultLoRA())},
		&ForwardReq{Iter: 0, Batch: 1, Seq: 2, Activations: tensor.NewNormal(rng, 1, 2, 3)},
		&ForwardResp{Iter: 0, Activations: tensor.NewNormal(rng, 1, 2, 3)},
		&BackwardReq{Iter: 0, Gradients: tensor.NewNormal(rng, 1, 2, 3)},
		&BackwardResp{Iter: 0, Gradients: tensor.NewNormal(rng, 1, 2, 3)},
		&Bye{},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.MsgType() != want.MsgType() {
			t.Fatalf("type %v, want %v", got.MsgType(), want.MsgType())
		}
	}
	if _, err := ReadMessage(&buf); !errors.Is(err, io.EOF) && err == nil {
		t.Fatal("read past end succeeded")
	}
}

func TestBackwardReqApplyFlag(t *testing.T) {
	rng := tensor.NewRNG(9)
	g := tensor.NewNormal(rng, 1, 2, 2)
	with := roundTrip(t, &BackwardReq{Iter: 3, Apply: true, Gradients: g}).(*BackwardReq)
	if !with.Apply {
		t.Fatal("Apply=true lost")
	}
	without := roundTrip(t, &BackwardReq{Iter: 3, Apply: false, Gradients: g}).(*BackwardReq)
	if without.Apply {
		t.Fatal("Apply=false lost")
	}
}
