package splitsim

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"menos/internal/memmodel"
	"menos/internal/obs"
)

// sumLabeledHist sums count and sum across every {client=...} series of
// a labeled histogram family.
func sumLabeledHist(t *testing.T, hv *obs.HistogramVec) (int64, float64) {
	t.Helper()
	var count int64
	var sum float64
	for _, l := range hv.Labels() {
		h, ok := hv.Get(l)
		if !ok {
			t.Fatalf("label %q listed but not gettable", l)
		}
		snap := h.Snapshot()
		count += snap.Count
		sum += snap.Sum
	}
	return count, sum
}

// TestMenosAccountingConservation: the per-tenant ledger's labeled
// series must sum to the unlabeled aggregates the dashboards already
// use — every grant wait lands in exactly one {client=...} series of
// the same menos_sched_wait_seconds family the scheduler observes
// unlabeled, and nothing is double-counted or dropped.
func TestMenosAccountingConservation(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := menosCfg(4, memmodel.PaperOPTWorkload())
	cfg.Metrics = reg
	r := run(t, cfg)

	agg := reg.Histogram(obs.MetricSchedWaitSeconds, nil).Snapshot()
	if agg.Count == 0 {
		t.Fatal("no scheduler waits observed")
	}
	hv := reg.HistogramVec(obs.MetricSchedWaitSeconds, "client", obs.DurationBuckets())
	count, sum := sumLabeledHist(t, hv)
	if count != agg.Count {
		t.Errorf("labeled wait count %d != unlabeled %d", count, agg.Count)
	}
	// The kernel is single-threaded, so both accumulators add the same
	// float sequence; allow only rounding-level slack.
	if diff := math.Abs(sum - agg.Sum); diff > 1e-9*math.Max(1, math.Abs(agg.Sum)) {
		t.Errorf("labeled wait sum %.12f != unlabeled %.12f", sum, agg.Sum)
	}

	// Per-client rows: every client ran all iterations, shipped the
	// same bytes both ways, and held memory for a positive time.
	rows := map[string]obs.ClientUsage{}
	for _, u := range ledgerRows(reg) {
		rows[u.ID] = u
	}
	transfer := cfg.Clients[0].Workload.TransferBytes()
	for _, cl := range cfg.Clients {
		u, ok := rows[cl.ID]
		if !ok {
			t.Fatalf("no ledger row for %q (rows: %v)", cl.ID, rows)
		}
		if u.Iterations != int64(cfg.Iterations) {
			t.Errorf("%s: iterations = %d, want %d", cl.ID, u.Iterations, cfg.Iterations)
		}
		// Two uploads and two downloads per iteration, all of transfer
		// bytes, seen from the server: tx = downloads, rx = uploads.
		want := 2 * int64(cfg.Iterations) * transfer
		if u.WireTxBytes != want || u.WireRxBytes != want {
			t.Errorf("%s: wire tx/rx = %d/%d, want %d each", cl.ID, u.WireTxBytes, u.WireRxBytes, want)
		}
		if u.ComputeSeconds <= 0 {
			t.Errorf("%s: no compute seconds accounted", cl.ID)
		}
		if u.PersistentByteSeconds <= 0 || u.TransientByteSeconds <= 0 {
			t.Errorf("%s: byte-seconds not accrued: persist=%.3f transient=%.3f",
				cl.ID, u.PersistentByteSeconds, u.TransientByteSeconds)
		}
	}
	_ = r
}

// ledgerRows reconstructs per-client usage from the exported labeled
// counters — the same data /loadz serves, read back through the
// registry as a scrape would.
func ledgerRows(reg *obs.Registry) []obs.ClientUsage {
	iters := reg.CounterVec(obs.MetricServerIterations, "client")
	tx := reg.CounterVec(obs.MetricServerWireTxBytes, "client")
	rx := reg.CounterVec(obs.MetricServerWireRxBytes, "client")
	pbs := reg.CounterVec(obs.MetricGPUPersistentByteSeconds, "client")
	tbs := reg.CounterVec(obs.MetricGPUTransientByteSeconds, "client")
	comp := reg.HistogramVec(obs.MetricServerComputeSeconds, "client", obs.DurationBuckets())
	var rows []obs.ClientUsage
	for _, l := range iters.Labels() {
		u := obs.ClientUsage{ID: l, Iterations: iters.With(l).Value()}
		u.WireTxBytes = tx.With(l).Value()
		u.WireRxBytes = rx.With(l).Value()
		u.PersistentByteSeconds = float64(pbs.With(l).Value())
		u.TransientByteSeconds = float64(tbs.With(l).Value())
		u.ComputeSeconds = comp.With(l).Snapshot().Sum
		rows = append(rows, u)
	}
	return rows
}

// TestMenosAccountingDeterminismPin: enabling the accounting plane must
// not change the simulation by one bit (the ledger observes virtual
// time, it never advances it), and two accounted runs must produce
// identical ledgers.
func TestMenosAccountingDeterminismPin(t *testing.T) {
	runJSON := func(instrument bool) ([]byte, []obs.ClientUsage) {
		cfg := menosCfg(3, memmodel.PaperOPTWorkload())
		var reg *obs.Registry
		if instrument {
			reg = obs.NewRegistry()
			cfg.Metrics = reg
		}
		r := run(t, cfg)
		// DecisionTime is the one wall-clock-measured field in the
		// result (real nanoseconds spent inside scheduler decisions);
		// it is noisy with or without accounting, so mask it.
		r.SchedStats.DecisionTime = 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if !instrument {
			return b, nil
		}
		return b, ledgerRows(reg)
	}

	plain, _ := runJSON(false)
	acct1, rows1 := runJSON(true)
	acct2, rows2 := runJSON(true)
	if string(plain) != string(acct1) {
		t.Error("accounting changed the simulation result")
	}
	if string(acct1) != string(acct2) {
		t.Error("accounted runs diverge")
	}
	if len(rows1) == 0 || !reflect.DeepEqual(rows1, rows2) {
		t.Errorf("ledgers diverge:\n%v\n%v", rows1, rows2)
	}
}
