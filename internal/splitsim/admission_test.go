package splitsim

import (
	"testing"
	"time"

	"menos/internal/memmodel"
	"menos/internal/sched"
)

// TestIdleSLOIsIdentical pins the byte-identical guarantee from a
// different angle than the disabled case: an SLO whose target is far
// above any wait the workload can produce keeps the controller Open
// for the whole run, and an Open controller must not perturb grant
// order, timings, or results in any way.
func TestIdleSLOIsIdentical(t *testing.T) {
	cfg := menosCfg(4, memmodel.PaperOPTWorkload())
	base := run(t, cfg)

	idle := cfg
	idle.SLO = sched.SLO{TargetP99: 24 * time.Hour}
	guarded := run(t, idle)

	if base.SimulatedTime != guarded.SimulatedTime {
		t.Fatalf("idle SLO changed end time: %v vs %v", base.SimulatedTime, guarded.SimulatedTime)
	}
	if base.AvgIterationTime() != guarded.AvgIterationTime() {
		t.Fatalf("idle SLO changed iteration time: %v vs %v",
			base.AvgIterationTime(), guarded.AvgIterationTime())
	}
	if guarded.Rejected != 0 {
		t.Fatalf("idle SLO rejected %d submissions", guarded.Rejected)
	}
	adm := guarded.Admission
	if adm.State != sched.StateOpen || adm.Shed != 0 || adm.Transitions != 0 {
		t.Fatalf("idle SLO controller was not inert: %+v", adm)
	}
	if base.Admission != (sched.AdmissionStats{}) {
		t.Fatalf("SLO-less run reported admission stats: %+v", base.Admission)
	}
}
