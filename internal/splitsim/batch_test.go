package splitsim

import (
	"encoding/json"
	"testing"
	"time"

	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/sched"
	"menos/internal/simnet"
)

// batchedCfg is the multilora-style setup: lockstep LoRA clients on a
// LAN (communication out of the picture — server-side batching is the
// subject), a multi-GPU server so full backward batches fit one grant,
// and a hold window wide enough for lockstep joiners to coalesce.
func batchedCfg(clients, maxSize int) Config {
	cfg := menosCfg(clients, memmodel.PaperOPTWorkload())
	cfg.GPUs = 4
	cfg.Iterations = 3
	cfg.LinkPreset = simnet.LANPreset
	cfg.Batch = &sched.BatchPolicy{MaxSize: maxSize, MaxHold: 100 * time.Millisecond}
	return cfg
}

// TestBatchConfigValidation: batching composes only with the mode and
// policies whose serving loop it replaces.
func TestBatchConfigValidation(t *testing.T) {
	bad := vanillaCfg(2, memmodel.PaperOPTWorkload())
	bad.Batch = &sched.BatchPolicy{MaxSize: 4}
	if _, err := Run(bad); err == nil {
		t.Error("vanilla mode accepted a batch policy")
	}
	bad = menosCfg(2, memmodel.PaperOPTWorkload())
	bad.Policy = PolicyPreserve
	bad.Batch = &sched.BatchPolicy{MaxSize: 4}
	if _, err := Run(bad); err == nil {
		t.Error("preserve policy accepted a batch policy")
	}
	bad = menosCfg(2, memmodel.PaperOPTWorkload())
	bad.Batch = &sched.BatchPolicy{MaxSize: -1}
	if _, err := Run(bad); err == nil {
		t.Error("negative MaxSize accepted")
	}
	// A disabled policy is inert: the run must be bit-identical to a
	// plain serial run, whatever the mode.
	plain := run(t, menosCfg(3, memmodel.PaperOPTWorkload()))
	disabled := menosCfg(3, memmodel.PaperOPTWorkload())
	disabled.Batch = &sched.BatchPolicy{}
	got := run(t, disabled)
	// DecisionTime is wall-clock measured and noisy; mask it.
	plain.SchedStats.DecisionTime = 0
	got.SchedStats.DecisionTime = 0
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Error("disabled batch policy changed the simulation")
	}
}

// TestBatchedDeterminismPin: a batched run is a pure function of its
// config — two runs, one instrumented, must agree bit-for-bit, and the
// instrumented run's ledger must be reproducible.
func TestBatchedDeterminismPin(t *testing.T) {
	runJSON := func(instrument bool) []byte {
		cfg := batchedCfg(8, 8)
		if instrument {
			cfg.Metrics = obs.NewRegistry()
		}
		r := run(t, cfg)
		r.SchedStats.DecisionTime = 0
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := runJSON(false)
	acct1 := runJSON(true)
	acct2 := runJSON(true)
	if string(plain) != string(acct1) {
		t.Error("instrumenting changed the batched simulation")
	}
	if string(acct1) != string(acct2) {
		t.Error("batched runs diverge")
	}
}

// TestBatchedKneeSpeedup is the acceptance bar: at 16 clients, a
// MaxSize-16 policy must deliver at least 2× the per-client throughput
// of the MaxSize-1 serial baseline (same serialized-device model, so
// the entire gap is batch formation).
func TestBatchedKneeSpeedup(t *testing.T) {
	serial := run(t, batchedCfg(16, 1))
	batched := run(t, batchedCfg(16, 16))
	speedup := float64(serial.SimulatedTime) / float64(batched.SimulatedTime)
	if speedup < 2 {
		t.Errorf("batch-16 speedup over batch-1 = %.2f×, want ≥ 2× (serial %v, batched %v)",
			speedup, serial.SimulatedTime, batched.SimulatedTime)
	}
	if batched.AvgIterationTime() >= serial.AvgIterationTime() {
		t.Errorf("batched iteration %v not faster than serial %v",
			batched.AvgIterationTime(), serial.AvgIterationTime())
	}
}

// TestBatchedAccountingConservation extends the ledger conservation
// contract to batched runs: every member's grant wait still lands in
// both the unlabeled histogram and exactly one {client=...} series,
// the batch row counters agree labeled vs unlabeled, and compute
// billed across clients equals the device time batches actually spent
// (Σ member shares is exact by construction).
func TestBatchedAccountingConservation(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := batchedCfg(8, 4)
	cfg.Metrics = reg
	run(t, cfg)

	agg := reg.Histogram(obs.MetricSchedWaitSeconds, nil).Snapshot()
	if agg.Count == 0 {
		t.Fatal("no scheduler waits observed")
	}
	hv := reg.HistogramVec(obs.MetricSchedWaitSeconds, "client", obs.DurationBuckets())
	count, sum := sumLabeledHist(t, hv)
	if count != agg.Count {
		t.Errorf("labeled wait count %d != unlabeled %d", count, agg.Count)
	}
	if diff := sum - agg.Sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("labeled wait sum %.12f != unlabeled %.12f", sum, agg.Sum)
	}

	formed := reg.Counter(obs.MetricBatchFormed).Value()
	if formed == 0 {
		t.Fatal("no batches formed")
	}
	aggRows := reg.Counter(obs.MetricBatchRows).Value()
	cv := reg.CounterVec(obs.MetricBatchRows, "client")
	var labeledRows int64
	for _, l := range cv.Labels() {
		c, ok := cv.Get(l)
		if !ok {
			t.Fatalf("label %q listed but not gettable", l)
		}
		labeledRows += c.Value()
	}
	if labeledRows != aggRows || aggRows == 0 {
		t.Errorf("batch rows labeled Σ=%d unlabeled=%d", labeledRows, aggRows)
	}
	// 8 clients × 3 iterations × 2 phases, batch rows = workload batch.
	wantRows := int64(8 * 3 * 2 * memmodel.PaperOPTWorkload().Batch)
	if aggRows != wantRows {
		t.Errorf("batch rows = %d, want %d", aggRows, wantRows)
	}
	// Per-client compute: the row share of every batched invocation.
	for _, u := range ledgerRows(reg) {
		if u.ComputeSeconds <= 0 {
			t.Errorf("%s: no compute billed", u.ID)
		}
	}
	// With MaxSize 4 and 8 lockstep clients, batches should fill: mean
	// batch size well above the serial degenerate 1.
	size := reg.Histogram(obs.MetricBatchSize, nil).Snapshot()
	if size.Count != formed {
		t.Errorf("size histogram count %d != formed %d", size.Count, formed)
	}
	if mean := size.Sum / float64(size.Count); mean < 2 {
		t.Errorf("mean batch size %.2f, want ≥ 2 for lockstep clients", mean)
	}
}
