package splitsim

import (
	"errors"
	"fmt"
	"time"

	"menos/internal/batch"
	"menos/internal/costmodel"
	"menos/internal/sched"
	"menos/internal/sim"
)

// simBatcher forms batched kernel invocations in virtual time, the
// simulation counterpart of internal/batch.Engine (which forms them on
// the wall clock and therefore cannot run under the deterministic
// kernel). The policy, the compatibility key, and the published
// menos_batch_* metrics are shared with the real engine; only the
// clockwork differs.
//
// Batched mode also changes the compute model: where the serial
// simulation time-shares GPU compute freely (each client sleeps its own
// duration, overlapped), a batched kernel invocation owns the device —
// one invocation runs at a time per server, serialized through a
// sim.Resource, and costs costmodel.BatchedTime(maxMemberDur, K). That
// is what makes the batch-size-vs-latency knee measurable: a size-1
// policy serializes K clients' kernels end to end, while a size-K
// policy amortizes the shared frozen base across one invocation.
type simBatcher struct {
	kernel  *sim.Kernel
	pol     sched.BatchPolicy
	metrics *batch.Metrics
	// onShed mirrors the serial path's shed bookkeeping (rejected
	// counter, ledger retries, flight snapshot) for a whole group.
	onShed func(members []*simMember)
	// onMem samples the transient-memory timeline after grants and
	// completes, like the serial grant()/release() closures do.
	onMem func(at time.Duration)

	seq    int
	groups map[simBatchKey]*simGroup
	gpus   map[*serverSim]*sim.Resource
}

// simBatchKey is the compatibility class of a forming group: one
// server, one phase, one stacked-tensor shape (batch.Key's Sig is
// irrelevant here — the analytic model has no adapter structure).
type simBatchKey struct {
	srv  *serverSim
	kind sched.RequestKind
	cut  int
	seq  int
}

// simMember is one client's share of a forming group. The joining
// process fills the request half and parks; the leader fills the
// outcome half and fires sig.
type simMember struct {
	id      string
	bytes   int64
	rows    int64
	dur     time.Duration // this member's serial kernel duration
	release time.Duration // release/re-collect overhead (backward only)

	joined time.Duration
	sig    *sim.Signal
	done   bool
	err    error
	// Outcome accounting, all on the virtual clock: the grant wait
	// (including the fixed decision cost, like waitGrant), the billed
	// compute share (Σ shares == batch duration), and the residency
	// stall (time inside the batch beyond the member's own share —
	// waiting for co-members' rows and for the device).
	wait    time.Duration
	compute time.Duration
	stall   time.Duration
}

// simGroup is one forming batch.
type simGroup struct {
	key     simBatchKey
	id      string
	jitter  int
	members []*simMember
	bytes   int64
	opened  time.Duration
	sealed  bool
}

func newSimBatcher(kernel *sim.Kernel, pol sched.BatchPolicy, metrics *batch.Metrics,
	onShed func([]*simMember), onMem func(time.Duration)) *simBatcher {
	return &simBatcher{
		kernel:  kernel,
		pol:     pol.WithDefaults(),
		metrics: metrics,
		onShed:  onShed,
		onMem:   onMem,
		groups:  make(map[simBatchKey]*simGroup),
		gpus:    make(map[*serverSim]*sim.Resource),
	}
}

// gpu returns srv's kernel-invocation slot: one batched invocation
// owns the device at a time.
func (b *simBatcher) gpu(srv *serverSim) *sim.Resource {
	r := b.gpus[srv]
	if r == nil {
		r = b.kernel.NewResource(fmt.Sprintf("gpu:%d", srv.id), 1)
		b.gpus[srv] = r
	}
	return r
}

// run joins m to the forming group for key and parks p until the
// group's batch has executed. It returns m.err (nil unless the batch
// could never be scheduled). On return m's wait/compute/stall fields
// hold the member's share of the batch for the caller to bill.
func (b *simBatcher) run(p *sim.Proc, key simBatchKey, m *simMember) error {
	m.joined = p.Now()
	m.sig = b.kernel.NewSignal()
	g := b.groups[key]
	// Byte budget: one batch becomes one scheduler grant, so a member
	// that would push the group past what the scheduler could ever
	// grant seals the group early and opens a fresh one.
	if g != nil && g.bytes+m.bytes > key.srv.scheduler.Schedulable() {
		b.seal(g)
		g = nil
	}
	if g == nil {
		b.seq++
		g = &simGroup{
			key:    key,
			id:     fmt.Sprintf("batch-%d", b.seq),
			jitter: b.seq % 8,
			opened: p.Now(),
		}
		b.groups[key] = g
		gg := g
		// The hold timer runs outside process context; sealing spawns
		// the leader, which is a process, so the callback never sleeps.
		b.kernel.After(b.pol.MaxHold, func() { b.seal(gg) })
	}
	g.members = append(g.members, m)
	g.bytes += m.bytes
	if len(g.members) >= b.pol.MaxSize {
		b.seal(g)
	}
	for !m.done {
		m.sig.Wait(p, "batch "+g.id)
	}
	return m.err
}

// seal closes g to new members and spawns its leader process. Safe to
// call from member process context and from After callbacks; idempotent
// so a size-full seal and a later hold-timer expiry cannot double-fire.
func (b *simBatcher) seal(g *simGroup) {
	if g.sealed {
		return
	}
	g.sealed = true
	if b.groups[g.key] == g {
		delete(b.groups, g.key)
	}
	b.kernel.Spawn(g.id, func(p *sim.Proc) { b.lead(p, g) })
}

// lead drives one sealed group: submit the batched grant, serialize on
// the device, sleep the batched kernel duration, release, bill each
// member its row share, and wake everyone.
func (b *simBatcher) lead(p *sim.Proc, g *simGroup) {
	hold := p.Now() - g.opened
	srv := g.key.srv
	members := make([]sched.BatchMember, len(g.members))
	var maxDur, maxRel, totalDur time.Duration
	for i, m := range g.members {
		members[i] = sched.BatchMember{ClientID: m.id, Bytes: m.bytes}
		if m.dur > maxDur {
			maxDur = m.dur
		}
		if m.release > maxRel {
			maxRel = m.release
		}
		totalDur += m.dur
	}

	// Submit with the serial path's shed semantics: back off for the
	// controller's hint (jittered deterministically per group) and
	// resubmit; members stay parked, so their recorded wait spans all
	// attempts. Errors other than overload can never be granted — fail
	// the members rather than deadlocking the kernel.
	granted := false
	sig := b.kernel.NewSignal()
	for {
		err := srv.scheduler.SubmitBatch(g.id, g.key.kind, members, func() {
			granted = true
			sig.Fire()
		})
		if err == nil {
			break
		}
		var ov *sched.OverloadError
		if !errors.As(err, &ov) {
			for _, m := range g.members {
				m.err = fmt.Errorf("batch %s: %w", g.id, err)
				m.done = true
				m.sig.Fire()
			}
			return
		}
		b.onShed(g.members)
		p.Sleep(ov.RetryAfter + ov.RetryAfter*time.Duration(g.jitter)/8)
	}
	for !granted {
		sig.Wait(p, "batch grant "+g.id)
	}
	grantAt := p.Now()
	b.onMem(grantAt)

	// One batched kernel invocation owns the device; the grant is held
	// across the sleep exactly like a serial client's.
	dev := b.gpu(srv)
	dev.Acquire(p)
	busy := costmodel.BatchedTime(maxDur, len(g.members))
	p.Sleep(busy)
	dev.Release()
	srv.scheduler.Complete(g.id)
	b.onMem(p.Now())
	// One release/re-collection cycle per batch — the batched path's
	// core saving over per-client release (Table 2's per-client cost).
	if maxRel > 0 {
		p.Sleep(maxRel)
	}
	doneAt := p.Now()

	// Bill each member its share of the device time, proportional to
	// its serial duration so heterogeneous members split the batch the
	// way the row-partitioned kernel actually spends it. Integer
	// remainders go to the last member, keeping Σ shares exact.
	total := doneAt - grantAt
	var billed time.Duration
	rows := make([]batch.MemberRows, len(g.members))
	for i, m := range g.members {
		share := total
		if totalDur > 0 {
			share = time.Duration(float64(total) * (float64(m.dur) / float64(totalDur)))
		}
		if i == len(g.members)-1 {
			share = total - billed
		}
		billed += share
		m.wait = grantAt - m.joined + costmodel.SchedulerDecisionTime
		m.compute = share
		m.stall = doneAt - grantAt - share
		rows[i] = batch.MemberRows{Client: m.id, Rows: m.rows}
	}
	b.metrics.Record(rows, hold.Seconds())
	for _, m := range g.members {
		m.done = true
		m.sig.Fire()
	}
}
