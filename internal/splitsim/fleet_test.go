package splitsim

import (
	"errors"
	"testing"
	"time"

	"menos/internal/fleet"
	"menos/internal/memmodel"
	"menos/internal/simnet"
)

// fleetCfg is a multi-server Menos run: n Llama clients over servers
// servers, slightly staggered so arrival order is visible in the trace.
func fleetCfg(n, servers int) Config {
	cfg := menosCfg(n, memmodel.PaperLlamaWorkload())
	cfg.Servers = servers
	for i := range cfg.Clients {
		cfg.Clients[i].StartDelay = time.Duration(i) * 500 * time.Millisecond
	}
	return cfg
}

// TestFleetRoundRobinByteIdentical is the compatibility guarantee of
// the fleet layer: a static multi-server run with an explicit
// RoundRobin placer must be byte-identical to the default (nil Placer)
// path, which itself reproduces the historical hardcoded i mod Servers
// assignment. Every observable — virtual end time, per-client
// breakdowns, the full memory timeline — must match exactly.
func TestFleetRoundRobinByteIdentical(t *testing.T) {
	base := run(t, fleetCfg(6, 3))

	cfg := fleetCfg(6, 3)
	cfg.Placer = fleet.NewRoundRobin()
	explicit := run(t, cfg)

	if base.SimulatedTime != explicit.SimulatedTime {
		t.Fatalf("SimulatedTime: nil placer %v, round-robin %v", base.SimulatedTime, explicit.SimulatedTime)
	}
	if base.AvgIterationTime() != explicit.AvgIterationTime() {
		t.Fatalf("AvgIterationTime: nil placer %v, round-robin %v",
			base.AvgIterationTime(), explicit.AvgIterationTime())
	}
	if len(base.MemSamples) != len(explicit.MemSamples) {
		t.Fatalf("MemSamples length: %d vs %d", len(base.MemSamples), len(explicit.MemSamples))
	}
	for i := range base.MemSamples {
		if base.MemSamples[i] != explicit.MemSamples[i] {
			t.Fatalf("MemSamples[%d]: %+v vs %+v", i, base.MemSamples[i], explicit.MemSamples[i])
		}
	}
	// DecisionTime is measured in wall time (the one deliberately
	// non-virtual stat); everything else must match exactly.
	bs, es := base.SchedStats, explicit.SchedStats
	bs.DecisionTime, es.DecisionTime = 0, 0
	if bs != es {
		t.Fatalf("SchedStats: %+v vs %+v", bs, es)
	}
	if base.Fleet != explicit.Fleet {
		t.Fatalf("FleetStats: %+v vs %+v", base.Fleet, explicit.Fleet)
	}
	if base.Fleet.Policy != "round-robin" || base.Fleet.Placements != 6 || base.Fleet.Migrations != 0 {
		t.Fatalf("static FleetStats = %+v", base.Fleet)
	}
}

// TestFleetStaticPlacementBalances: LeastLoaded and MemoryBestFit on a
// homogeneous roster both end perfectly balanced (imbalance 1.0), and
// the run completes with the policy name reported.
func TestFleetStaticPlacementBalances(t *testing.T) {
	for _, placer := range []fleet.Placer{fleet.NewLeastLoaded(), fleet.NewMemoryBestFit()} {
		cfg := fleetCfg(6, 3)
		cfg.Placer = placer
		r := run(t, cfg)
		if r.Fleet.Policy != placer.Name() {
			t.Errorf("policy name %q, want %q", r.Fleet.Policy, placer.Name())
		}
		if r.Fleet.ImbalanceRatio != 1.0 {
			t.Errorf("%s: imbalance %v, want 1.0 on a homogeneous roster", placer.Name(), r.Fleet.ImbalanceRatio)
		}
		if r.Fleet.FinalServers != 3 || r.Fleet.PeakServers != 3 {
			t.Errorf("%s: servers final=%d peak=%d, want 3/3", placer.Name(), r.Fleet.FinalServers, r.Fleet.PeakServers)
		}
	}
}

// TestFleetConfigValidation pins the fleet-plane config rules: vanilla
// has no fleet, autoscale bounds include the starting size.
func TestFleetConfigValidation(t *testing.T) {
	v := vanillaCfg(2, memmodel.PaperOPTWorkload())
	v.Placer = fleet.NewLeastLoaded()
	if _, err := Run(v); !errors.Is(err, ErrConfig) {
		t.Fatalf("vanilla+placer: err = %v, want ErrConfig", err)
	}
	v = vanillaCfg(2, memmodel.PaperOPTWorkload())
	v.Autoscale = &fleet.AutoscaleConfig{}
	if _, err := Run(v); !errors.Is(err, ErrConfig) {
		t.Fatalf("vanilla+autoscale: err = %v, want ErrConfig", err)
	}
	m := fleetCfg(2, 5)
	m.Autoscale = &fleet.AutoscaleConfig{Min: 1, Max: 3}
	if _, err := Run(m); !errors.Is(err, ErrConfig) {
		t.Fatalf("servers above Max: err = %v, want ErrConfig", err)
	}
}

// autoscaleCfg is an autoscaled run growing from one server: on a LAN
// (comm negligible) the iteration is dominated by server compute, so
// backward grants queue behind the single schedulable Llama backward
// and the mean queue depth crosses the scale-up threshold.
func autoscaleCfg(n int) Config {
	cfg := fleetCfg(n, 1)
	cfg.LinkPreset = simnet.LANPreset
	cfg.Placer = fleet.NewLeastLoaded()
	cfg.Autoscale = &fleet.AutoscaleConfig{Min: 1, Max: 3}
	return cfg
}

// TestFleetAutoscaleGrowsUnderLoad: eight Llama clients on one V100
// fit only one backward at a time, so the queue builds and the
// autoscaler must add servers; clients rebalance onto them.
func TestFleetAutoscaleGrowsUnderLoad(t *testing.T) {
	r := run(t, autoscaleCfg(8))
	if r.Fleet.PeakServers <= 1 {
		t.Fatalf("fleet never grew: %+v", r.Fleet)
	}
	if r.Fleet.ScaleEvents == 0 {
		t.Fatalf("no scale events recorded: %+v", r.Fleet)
	}
	if r.Fleet.Migrations == 0 {
		t.Fatalf("no client migrated to the new capacity: %+v", r.Fleet)
	}
	if r.Fleet.StartServers != 1 {
		t.Fatalf("StartServers = %d, want 1", r.Fleet.StartServers)
	}
	// Growth must pay off: the run with autoscaling beats the pinned
	// single server.
	pinnedCfg := fleetCfg(8, 1)
	pinnedCfg.LinkPreset = simnet.LANPreset
	pinned := run(t, pinnedCfg)
	if r.AvgIterationTime() >= pinned.AvgIterationTime() {
		t.Fatalf("autoscaled iteration %v not better than single-server %v",
			r.AvgIterationTime(), pinned.AvgIterationTime())
	}
}

// TestFleetAutoscaleDeterministic: the entire fleet dynamic — scale
// events, migrations, final server count, the virtual end time — must
// be identical across repeated runs of the same config.
func TestFleetAutoscaleDeterministic(t *testing.T) {
	a := run(t, autoscaleCfg(6))
	b := run(t, autoscaleCfg(6))
	if a.SimulatedTime != b.SimulatedTime {
		t.Fatalf("SimulatedTime: %v vs %v", a.SimulatedTime, b.SimulatedTime)
	}
	if a.Fleet != b.Fleet {
		t.Fatalf("FleetStats: %+v vs %+v", a.Fleet, b.Fleet)
	}
	if a.AvgIterationTime() != b.AvgIterationTime() {
		t.Fatalf("AvgIterationTime: %v vs %v", a.AvgIterationTime(), b.AvgIterationTime())
	}
	if len(a.MemSamples) != len(b.MemSamples) {
		t.Fatalf("MemSamples length: %d vs %d", len(a.MemSamples), len(b.MemSamples))
	}
}
