package splitsim

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"menos/internal/batch"
	"menos/internal/costmodel"
	"menos/internal/fleet"
	"menos/internal/gpu"
	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/sched"
	"menos/internal/sim"
	"menos/internal/trace"
)

// Fleet-dynamics cost model: moving a client between servers ships its
// persistent state (adapter, gradients, optimizer) over the
// inter-server network, and an unplaceable client retries after a
// backoff. Both are virtual-time costs, so fleet decisions show up in
// the same iteration-time figures as everything else.
const (
	// interServerBandwidth models a 10 GbE cluster fabric.
	interServerBandwidth = 10e9 / 8 // bytes/s
	// migrationLatency is the fixed setup cost of a migration
	// (handshake, context creation on the target).
	migrationLatency = 5 * time.Millisecond
	// placementRetry is the base backoff of a client no server can
	// admit yet (jittered per client, like the shed-retry backoff).
	placementRetry = 2 * time.Second
	// placementAttempts bounds the placement retry loop so an
	// impossible workload surfaces as an error instead of a livelock
	// against the autoscaler's tick chain.
	placementAttempts = 64
)

// migrationTime is the virtual-time cost of moving bytes of client
// state to another server.
func migrationTime(bytes int64) time.Duration {
	return migrationLatency + time.Duration(float64(bytes)/interServerBandwidth*float64(time.Second))
}

// runMenos simulates the Menos server: one shared base-model copy,
// per-client serving processes, on-demand memory allocation under the
// configured policy, and the Algorithm-2 scheduler.
//
// GPU compute is modeled as freely time-shared (CUDA streams): the
// scarce, scheduled resource is memory, exactly as in the paper. The
// growing cost of concurrency appears as the release/re-collection
// overhead of Table 2, which scales with the per-GPU client density.
//
// Multi-server runs go through the fleet control plane
// (internal/fleet): Config.Placer assigns clients to servers (default
// RoundRobin, bit-identical to the historical i mod Servers
// assignment) and Config.Autoscale lets servers join and drain mid-run
// with clients migrating at iteration boundaries.
//
// serverSim is one Menos server in the simulation: its own GPUs, base
// copy and scheduler. The scheduler's budget is the memory left after
// the base copy and manager context; per-client persistent state is
// carved out of that budget with Reserve, so Schedulable() always
// reflects what a transient request can actually win.
type serverSim struct {
	id        int
	devices   *gpu.DeviceSet
	scheduler *sched.Scheduler
	// maxDemand is the largest transient peak among clients ever
	// admitted here; arrivals that would squeeze Schedulable below it
	// are refused (they would deadlock a resident client).
	maxDemand int64
	draining  bool
	removed   bool
}

func runMenos(cfg Config) (*Result, error) {
	kernel := sim.New()
	link := cfg.LinkPreset(kernel)

	// The fleet control plane. A nil Placer means RoundRobin, which
	// reproduces the historical hardcoded assignment bit-exactly.
	placer := cfg.Placer
	if placer == nil {
		placer = fleet.NewRoundRobin()
	}
	mgr := fleet.NewManager(placer)
	mgr.Instrument(cfg.Metrics)

	// Per-tenant accounting on the virtual clock. One ledger spans the
	// whole fleet (rows are per client, wherever placed); every method
	// is nil-receiver safe, so an uninstrumented run pays nothing. The
	// ledger only observes — it never advances virtual time — so
	// enabling it cannot perturb the simulation's schedule.
	var ledger *obs.Ledger
	if cfg.Metrics != nil {
		ledger = obs.NewLedger(obs.LedgerConfig{Clock: obs.ClockFunc(kernel.Now)})
		ledger.Instrument(cfg.Metrics)
	}

	// One server instance per cfg.Servers (plus any the autoscaler
	// adds), each with its own shared base copy (sharded over its
	// GPUs), manager context and scheduler.
	w0 := cfg.Clients[0].Workload
	var servers []*serverSim
	peakServers := 0
	newServer := func() (*serverSim, error) {
		id := len(servers)
		devices, err := gpu.NewDeviceSet(cfg.GPUSpec, cfg.GPUs)
		if err != nil {
			return nil, err
		}
		devices.Instrument(cfg.Metrics)
		if _, err := devices.AllocSharded("base-model", w0.ServerBaseBytes()); err != nil {
			return nil, fmt.Errorf("server %d: loading shared base model: %w", id, err)
		}
		if _, err := devices.Alloc("manager", memmodel.ManagerOverheadBytes); err != nil {
			return nil, fmt.Errorf("server %d: manager context: %w", id, err)
		}
		srv := &serverSim{id: id, devices: devices}
		// The virtual clock: scheduler wait times and spans are
		// measured in kernel time, so the telemetry of a simulated run
		// reads exactly like a real one (only ~10^6× faster to
		// produce).
		srv.scheduler = sched.New(devices.Available(), cfg.SchedPol)
		srv.scheduler.Instrument(cfg.Metrics, obs.ClockFunc(kernel.Now))
		srv.scheduler.SetLedger(ledger)
		if cfg.SLO.Enabled() {
			if err := srv.scheduler.EnableAdmission(cfg.SLO, obs.ClockFunc(kernel.Now)); err != nil {
				return nil, fmt.Errorf("admission control: %w", err)
			}
		}
		if cfg.Flight != nil {
			// The kernel is single-threaded, so the synchronous Trigger
			// keeps flight snapshots deterministic across runs.
			srv.scheduler.SetAdmissionHook(func(from, to sched.AdmissionState) {
				cfg.Flight.Trigger(obs.FlightReasonAdmission)
			})
		}
		servers = append(servers, srv)
		err = mgr.AddServer(id, devices.Capacity(), []string{w0.Model.Name}, func() fleet.Signals {
			return fleet.Signals{
				QueueDepth: srv.scheduler.QueueDepth(),
				UsedBytes:  srv.devices.Used(),
				Admission:  fleet.AdmissionState(srv.scheduler.AdmissionState()),
			}
		})
		if err != nil {
			return nil, err
		}
		if n := mgr.ActiveServers(); n > peakServers {
			peakServers = n
		}
		return srv, nil
	}
	for s := 0; s < cfg.Servers; s++ {
		if _, err := newServer(); err != nil {
			return nil, err
		}
	}

	// Profiling phase (§3.3): the server measures each client's
	// forward and backward memory demands before serving. In the
	// simulation the profiler is the analytic model; the real runtime
	// measures instantiated caches. The fleet placer packs against the
	// same prediction (persistent state plus the largest transient
	// peak).
	demands := make(map[string]struct{ fwd, bwd int64 }, len(cfg.Clients))
	for _, cl := range cfg.Clients {
		d := struct{ fwd, bwd int64 }{
			fwd: cl.Workload.NoGradForwardBytes(),
			bwd: cl.Workload.BackwardPeakBytes(),
		}
		switch cfg.Policy {
		case PolicyReleaseOnWait:
			d.fwd = cl.Workload.ActivationBytes()
		case PolicyPreserve, PolicyPersistAll:
			d.fwd = cl.Workload.ActivationBytes()
			d.bwd = 0 // memory held since forward
		}
		demands[cl.ID] = d
	}
	infoOf := func(cl ClientSpec) fleet.ClientInfo {
		d := demands[cl.ID]
		peak := d.fwd
		if d.bwd > peak {
			peak = d.bwd
		}
		return fleet.ClientInfo{
			ID:                 cl.ID,
			BaseModel:          cl.Workload.Model.Name,
			PersistentBytes:    cl.Workload.PersistentClientBytes(),
			TransientPeakBytes: peak,
		}
	}

	// admitClient physically lands a client's persistent state on srv:
	// device memory plus a scheduler reservation, so the schedulable
	// budget shrinks exactly as the historical post-persist budget did.
	admitClient := func(srv *serverSim, ci fleet.ClientInfo) error {
		if _, err := srv.devices.Alloc("persist:"+ci.ID, ci.PersistentBytes); err != nil {
			return fmt.Errorf("client %q persistent state: %w", ci.ID, err)
		}
		if err := srv.scheduler.Reserve("persist:"+ci.ID, ci.PersistentBytes); err != nil {
			srv.devices.FreeOwner("persist:" + ci.ID)
			return fmt.Errorf("client %q persistent state: %w", ci.ID, err)
		}
		if ci.TransientPeakBytes > srv.maxDemand {
			srv.maxDemand = ci.TransientPeakBytes
		}
		return nil
	}
	// canAdmit is the dynamic-arrival feasibility gate: after reserving
	// the persistent state, the schedulable budget must still fit both
	// the newcomer's and every resident's transient peak, or someone's
	// Submit would fail ErrNeverFits and stall forever.
	canAdmit := func(srv *serverSim, ci fleet.ClientInfo) bool {
		if srv.draining || srv.removed {
			return false
		}
		budget := srv.scheduler.Schedulable() - ci.PersistentBytes
		need := ci.TransientPeakBytes
		if srv.maxDemand > need {
			need = srv.maxDemand
		}
		return budget >= need
	}

	// Static fleets place every client up front in arrival order — the
	// admission-time decision of a deployment where the roster is known
	// — which with RoundRobin reproduces the historical assignment
	// exactly. Autoscaled fleets place each client when it arrives (see
	// the client process below).
	if cfg.Autoscale == nil {
		for _, cl := range cfg.Clients {
			ci := infoOf(cl)
			id, err := mgr.Place(ci)
			if err != nil {
				return nil, err
			}
			if err := admitClient(servers[id], ci); err != nil {
				return nil, err
			}
		}
	}
	var persistent int64
	if cfg.Autoscale == nil {
		for _, srv := range servers {
			persistent += srv.devices.Used()
		}
	}

	results := make([]ClientResult, len(cfg.Clients))
	for i := range cfg.Clients {
		results[i] = ClientResult{ID: cfg.Clients[i].ID, Breakdown: &trace.Breakdown{}}
	}
	var waits WaitStats
	var rejected int64 // admission sheds; kernel is single-threaded
	var hiddenTotal time.Duration

	// Wire-plane instrumentation mirrors the TCP runtime's families
	// (docs/WIRE.md): compressed counts the on-wire bytes of quantized
	// payloads, raw the fp32 bytes they replaced, and the overlap
	// histogram observes per-iteration hidden time in virtual seconds.
	// All handles are nil-safe, so an uninstrumented run pays nothing.
	wireCompressed := cfg.Metrics.Counter(obs.MetricWireCompressedBytes, "On-wire bytes of compressed activation payloads (simulated).")
	wireRaw := cfg.Metrics.Counter(obs.MetricWireRawBytes, "fp32 bytes the compressed payloads replaced (simulated).")
	hiddenHist := cfg.Metrics.Histogram(obs.MetricOverlapHiddenSeconds, obs.DurationBuckets(), "Per-iteration virtual time hidden by comm/compute overlap.")
	var samples []MemSample
	sampleMem := func(at time.Duration) {
		var used int64
		for _, srv := range servers {
			// Transient scheduled memory: the schedulable budget minus
			// what is still free (persistent reservations cancel out).
			used += srv.scheduler.Schedulable() - srv.scheduler.Available()
		}
		// Coalesce same-instant transitions: keep the last value.
		if n := len(samples); n > 0 && samples[n-1].At == at {
			samples[n-1].Bytes = used
			return
		}
		samples = append(samples, MemSample{At: at, Bytes: used})
	}
	recordWait := func(kind sched.RequestKind, d time.Duration) {
		if kind == sched.KindForward {
			waits.ForwardTotal += d
			waits.Forwards++
		} else {
			waits.BackwardTotal += d
			waits.Backwards++
		}
	}

	// Batched server phases (docs/BATCHING.md): compatible forward and
	// backward requests coalesce into one kernel invocation, formed in
	// virtual time under the same policy and metrics the wall-clock
	// engine (internal/batch) uses. Nil when batching is disabled, which
	// leaves the serial path — and its virtual-time trace — untouched.
	var batcher *simBatcher
	if cfg.Batch != nil && cfg.Batch.Enabled() {
		pol := cfg.Batch.WithDefaults()
		bm := batch.NewMetrics(cfg.Metrics, ledger, pol.MaxSize)
		batcher = newSimBatcher(kernel, pol, bm,
			func(members []*simMember) {
				rejected += int64(len(members))
				for _, m := range members {
					ledger.Retry(m.id)
				}
				if cfg.Flight != nil {
					cfg.Flight.Trigger(obs.FlightReasonShed)
				}
			},
			sampleMem)
	}

	// Fleet dynamics state (autoscaled runs only). The kernel is
	// single-threaded, so plain variables suffice.
	remaining := len(cfg.Clients)
	pendingPlace := 0
	var fleetErr error
	failFleet := func(err error) {
		if fleetErr == nil {
			fleetErr = err
		}
	}
	// decommission retires a drained server once its last client left:
	// base copy and manager context are freed, the scheduler closed,
	// and the server leaves the fleet bookkeeping.
	decommission := func(srv *serverSim) {
		if !srv.draining || srv.removed || mgr.ClientCount(srv.id) > 0 {
			return
		}
		if err := mgr.Remove(srv.id); err != nil {
			failFleet(err)
			return
		}
		srv.removed = true
		srv.scheduler.Close()
		srv.devices.FreeOwner("base-model")
		srv.devices.FreeOwner("manager")
	}

	if cfg.Autoscale != nil {
		as := fleet.NewAutoscaler(*cfg.Autoscale)
		interval := as.Config().Interval
		var tick func()
		tick = func() {
			if remaining == 0 || fleetErr != nil {
				return // last client done: let the kernel run dry
			}
			switch as.Decide(kernel.Now(), pendingPlace, mgr.Loads()) {
			case fleet.ScaleUp:
				if _, err := newServer(); err != nil {
					failFleet(fmt.Errorf("fleet scale-up: %w", err))
					return
				}
				mgr.RecordScaleEvent()
			case fleet.ScaleDown:
				if id, ok := mgr.DrainCandidate(); ok {
					if err := mgr.Drain(id); err != nil {
						failFleet(err)
						return
					}
					servers[id].draining = true
					mgr.RecordScaleEvent()
					decommission(servers[id])
				}
			}
			kernel.After(interval, tick)
		}
		kernel.After(interval, tick)
	}

	for i, cl := range cfg.Clients {
		cl := cl
		i := i
		ci := infoOf(cl)
		bd := results[i].Breakdown
		cost := costmodel.New(cfg.ServerPerf, cl.Workload)
		clientTotal := costmodel.ClientComputeTime(cl.Platform, cl.Workload)
		pre, mid, post := clientPhases(clientTotal)
		demand := demands[cl.ID]
		// The wire codec shrinks every split-boundary transfer to its
		// ratio of the fp32 volume (per-row scale overhead dropped; see
		// quant.Codec.WireRatio). Grant sizes are untouched: compression
		// changes what crosses the link, not what the GPU materializes.
		rawTransfer := cl.Workload.TransferBytes()
		transfer := rawTransfer
		if cfg.WireCodec != quant.CodecFP32 {
			transfer = int64(float64(rawTransfer) * cfg.WireCodec.WireRatio())
		}
		// Release-overhead concurrency: clients per GPU on this
		// client's server (allocator fragmentation is per-device). For
		// a static fleet the roster is fixed, so the density is too;
		// autoscaled runs recompute it per iteration.
		var srv *serverSim
		var staticRelease time.Duration
		if cfg.Autoscale == nil {
			id, _ := mgr.ServerOf(cl.ID)
			srv = servers[id]
			density := (mgr.ClientCount(id) + cfg.GPUs - 1) / cfg.GPUs
			staticRelease = cost.ReleaseOverhead(density)
		}

		kernel.Spawn("client:"+cl.ID, func(p *sim.Proc) {
			defer func() { remaining-- }()
			var scheduler *sched.Scheduler
			if srv != nil {
				scheduler = srv.scheduler
			}
			// Every accumulator update below also records a span with
			// identical virtual-time bounds, so summing spans by
			// category reconstructs the Breakdown exactly (the bench's
			// -trace-out parity check relies on this).
			// tid is the current iteration's trace ID — the same
			// obs.IterTraceID(clientID, iter) a TCP client stamps on its
			// wire requests, so simulated and real traces of one workload
			// correlate by identical IDs.
			var tid uint64
			var comm, comp, schedT time.Duration
			sleepComp := func(name string, d time.Duration) {
				start := p.Now()
				p.Sleep(d)
				comp += d
				cfg.Tracer.RecordT(cl.ID, name, "compute", tid, start, d)
				// Server-side phases bill the tenant's compute-seconds;
				// the client-local sections ("client-*") are the
				// client's own hardware, not shared-server time.
				if !strings.HasPrefix(name, "client-") {
					ledger.AddCompute(cl.ID, d.Seconds())
				}
			}
			xfer := func(name string) {
				start := p.Now()
				d := link.Transfer(p, transfer)
				comm += d
				cfg.Tracer.RecordT(cl.ID, name, "comm", tid, start, d)
				// Wire accounting from the server's viewpoint: an upload
				// is bytes the server received, a download bytes it sent.
				if strings.HasPrefix(name, "upload:") {
					ledger.AddWire(cl.ID, 0, transfer)
				} else {
					ledger.AddWire(cl.ID, transfer, 0)
				}
				if cfg.WireCodec != quant.CodecFP32 {
					wireCompressed.Add(transfer)
					wireRaw.Add(rawTransfer)
				}
			}
			grant := func(kind sched.RequestKind, bytes int64) {
				start := p.Now()
				d, err := waitGrant(p, scheduler, cl.ID, kind, bytes)
				for err != nil {
					// Admission shed: back off for the server's hint
					// and resubmit, exactly like a real client. The
					// recorded wait spans all attempts and backoffs.
					// The backoff is jittered per client (deterministic,
					// keyed by client index) so shed clients do not
					// resubmit in a synchronized herd.
					rejected++
					ledger.Retry(cl.ID)
					if cfg.Flight != nil {
						cfg.Flight.Trigger(obs.FlightReasonShed)
					}
					var ov *sched.OverloadError
					errors.As(err, &ov)
					p.Sleep(ov.RetryAfter + ov.RetryAfter*time.Duration(i%8)/8)
					if d, err = waitGrant(p, scheduler, cl.ID, kind, bytes); err == nil {
						d = p.Now() - start + costmodel.SchedulerDecisionTime
					}
				}
				recordWait(kind, d)
				sampleMem(p.Now())
				schedT += d
				// d includes the fixed scheduler decision cost, which
				// does not advance virtual time; keep the span equal to
				// what the Breakdown records.
				cfg.Tracer.RecordT(cl.ID, "wait:"+kind.String(), "sched", tid, start, d)
			}
			release := func() {
				scheduler.Complete(cl.ID)
				sampleMem(p.Now())
			}
			// batchPhase runs one server phase through the batcher
			// instead of grant/sleep/release: the member parks until its
			// batch executes, then bills its share — grant wait and
			// residency stall into the sched bucket, its row share of the
			// batched kernel into compute (so Σ clients' compute equals
			// the device time actually spent). Returns false on a fatal
			// scheduling error.
			batchPhase := func(kind sched.RequestKind, name string, bytes int64, dur, rel time.Duration) bool {
				start := p.Now()
				m := &simMember{
					id:      cl.ID,
					bytes:   bytes,
					rows:    int64(cl.Workload.Batch),
					dur:     dur,
					release: rel,
				}
				key := simBatchKey{srv: srv, kind: kind, cut: cl.Workload.Cut, seq: cl.Workload.Seq}
				if err := batcher.run(p, key, m); err != nil {
					failFleet(fmt.Errorf("client %q: %v", cl.ID, err))
					return false
				}
				recordWait(kind, m.wait)
				schedT += m.wait + m.stall
				comp += m.compute
				cfg.Tracer.RecordT(cl.ID, "wait:"+kind.String(), "sched", tid, start, m.wait)
				grantAt := start + m.wait - costmodel.SchedulerDecisionTime
				cfg.Tracer.RecordT(cl.ID, name, "compute", tid, grantAt, m.compute)
				if m.stall > 0 {
					cfg.Tracer.RecordT(cl.ID, "batch-stall", "sched", tid, grantAt+m.compute, m.stall)
				}
				ledger.AddCompute(cl.ID, m.compute.Seconds())
				return true
			}
			if cl.StartDelay > 0 {
				p.Sleep(cl.StartDelay)
			}

			// Autoscaled fleets place the client at arrival. When no
			// server can physically admit it yet, the client backs off
			// and retries; the pending count is the autoscaler's
			// strongest grow signal.
			if cfg.Autoscale != nil {
				placed := false
				counted := false
				for attempt := 0; attempt < placementAttempts; attempt++ {
					id, err := mgr.Place(ci)
					if err == nil {
						cand := servers[id]
						if canAdmit(cand, ci) && admitClient(cand, ci) == nil {
							srv = cand
							scheduler = cand.scheduler
							placed = true
							break
						}
						mgr.Unplace(cl.ID)
					}
					if !counted {
						pendingPlace++
						counted = true
					}
					p.Sleep(placementRetry + placementRetry*time.Duration(i%8)/8)
				}
				if counted {
					pendingPlace--
				}
				if !placed {
					failFleet(fmt.Errorf("client %q: no server could admit it after %d attempts", cl.ID, placementAttempts))
					return
				}
			}
			// migrate follows a fleet decision to move this client:
			// release everything held here, ship the persistent state,
			// re-admit on the target. Runs only between iterations, so
			// the only held grant is PolicyPersistAll's session grant.
			migrate := func(p *sim.Proc, dst *serverSim) bool {
				start := p.Now()
				old := srv
				old.scheduler.Complete(cl.ID)
				old.scheduler.Complete("persist:" + cl.ID)
				old.devices.FreeOwner("persist:" + ci.ID)
				for attempt := 0; ; attempt++ {
					if err := admitClient(dst, ci); err == nil {
						break
					}
					if attempt >= placementAttempts {
						failFleet(fmt.Errorf("client %q: migration to server %d failed after %d attempts", cl.ID, dst.id, placementAttempts))
						return false
					}
					// Target memory still held by in-flight grants:
					// wait for them to complete.
					p.Sleep(placementRetry)
				}
				p.Sleep(migrationTime(ci.PersistentBytes))
				d := p.Now() - start
				schedT += d
				cfg.Tracer.RecordT(cl.ID, "migrate", "sched", tid, start, d)
				sampleMem(p.Now())
				srv = dst
				scheduler = dst.scheduler
				decommission(old)
				return true
			}

			persisted := false
			for iter := 0; iter < cfg.Iterations; iter++ {
				tid = obs.IterTraceID(cl.ID, iter)
				comm, comp, schedT = 0, 0, 0

				// Fleet rebalance check (autoscaled runs): evacuate a
				// draining server, or follow a strictly better
				// placement.
				if cfg.Autoscale != nil && iter > 0 {
					target, moved, err := mgr.Rebalance(ci, func(id int) bool {
						return canAdmit(servers[id], ci)
					})
					if err != nil {
						failFleet(err)
						return
					}
					if moved {
						if !migrate(p, servers[target]) {
							return
						}
						persisted = false
					}
				}
				releaseCost := staticRelease
				if cfg.Autoscale != nil {
					density := (mgr.ClientCount(srv.id) + cfg.GPUs - 1) / cfg.GPUs
					releaseCost = cost.ReleaseOverhead(density)
				}

				// Overlapped iteration (docs/WIRE.md): the client-local
				// compute runs as its own process, concurrent with the
				// wire+server leg below, modeling the steady state of the
				// double-buffered microbatch pipeline — each client
				// segment of microbatch i+1 hides under the transfers and
				// server phases of microbatch i, so the iteration's wall
				// time is the slower leg (costmodel.OverlapStepTime), not
				// the serial sum. The Breakdown still records serial
				// totals (comm, comp, sched are resource costs, not wall
				// time); the savings show up in SimulatedTime and the
				// hidden-time histogram. Only the validated envelope
				// (on-demand policy, serial serving, static fleet)
				// reaches this branch.
				if cfg.Overlap {
					iterStart := p.Now()
					computeDone := false
					joined := kernel.NewSignal()
					kernel.Spawn(fmt.Sprintf("client:%s:compute:%d", cl.ID, iter), func(q *sim.Proc) {
						local := func(name string, d time.Duration) {
							start := q.Now()
							q.Sleep(d)
							comp += d
							cfg.Tracer.RecordT(cl.ID, name, "compute", tid, start, d)
						}
						local("client-pre", pre)
						local("client-mid", mid)
						local("client-post", post)
						computeDone = true
						joined.Fire()
					})
					xfer("upload:x_c")
					grant(sched.KindForward, demand.fwd)
					sleepComp("forward", cost.NoGradForwardTime(cl.Workload))
					release()
					xfer("download:x_s")
					xfer("upload:g_c")
					grant(sched.KindBackward, demand.bwd)
					sleepComp("re-forward+backward",
						cost.ForwardTime(cl.Workload)+cost.BackwardTime(cl.Workload))
					release()
					sleepComp("release", releaseCost)
					sleepComp("optimizer", costmodel.OptimizerStepTime)
					xfer("download:g_s")
					for !computeDone {
						joined.Wait(p, "overlap join "+cl.ID)
					}
					if hidden := comm + comp + schedT - (p.Now() - iterStart); hidden > 0 {
						hiddenTotal += hidden
						hiddenHist.Observe(hidden.Seconds())
					}
					bd.Add(comm, comp, schedT)
					ledger.AddIteration(cl.ID)
					continue
				}

				// Client computes the input section and uploads x_c.
				sleepComp("client-pre", pre)
				xfer("upload:x_c")

				// ---- Server: forward request ----
				switch cfg.Policy {
				case PolicyPersistAll:
					// Reserve once, on the first iteration, forever.
					if !persisted {
						grant(sched.KindForward, demand.fwd)
						persisted = true
					}
					sleepComp("forward", cost.ForwardTime(cl.Workload))
				case PolicyPreserve, PolicyReleaseOnWait:
					grant(sched.KindForward, demand.fwd)
					sleepComp("forward", cost.ForwardTime(cl.Workload))
					if cfg.Policy == PolicyReleaseOnWait {
						release()
						sleepComp("release", releaseCost/2)
					}
					// PolicyPreserve: memory stays allocated through
					// the gradient wait.
				default: // PolicyOnDemand, Fig. 3(d)
					if batcher != nil {
						if !batchPhase(sched.KindForward, "forward", demand.fwd,
							cost.NoGradForwardTime(cl.Workload), 0) {
							return
						}
					} else {
						grant(sched.KindForward, demand.fwd)
						sleepComp("forward", cost.NoGradForwardTime(cl.Workload))
						release()
					}
				}

				// Server returns x_s; client runs the output section,
				// computes the loss, and uploads g_c.
				xfer("download:x_s")
				sleepComp("client-mid", mid)
				xfer("upload:g_c")

				// ---- Server: backward request ----
				switch cfg.Policy {
				case PolicyPersistAll:
					sleepComp("backward", cost.BackwardTime(cl.Workload))
				case PolicyPreserve:
					sleepComp("backward", cost.BackwardTime(cl.Workload))
					release()
					sleepComp("release", releaseCost)
				case PolicyReleaseOnWait:
					grant(sched.KindBackward, demand.bwd)
					sleepComp("backward", cost.ForwardTime(cl.Workload)+cost.BackwardTime(cl.Workload))
					release()
					sleepComp("release", releaseCost/2)
				default: // PolicyOnDemand
					if batcher != nil {
						// Re-forward + backward, batched; the release/
						// re-collection cycle happens once per batch
						// inside the leader, not once per client.
						if !batchPhase(sched.KindBackward, "re-forward+backward", demand.bwd,
							cost.ForwardTime(cl.Workload)+cost.BackwardTime(cl.Workload), releaseCost) {
							return
						}
					} else {
						grant(sched.KindBackward, demand.bwd)
						// Re-forward + backward.
						sleepComp("re-forward+backward",
							cost.ForwardTime(cl.Workload)+cost.BackwardTime(cl.Workload))
						release()
						// Releasing and re-collecting fragmented memory
						// happens after the grant is returned (Table 2's
						// growing overhead).
						sleepComp("release", releaseCost)
					}
				}
				sleepComp("optimizer", costmodel.OptimizerStepTime)

				// Server returns g_s; client finishes its backward and
				// optimizer step.
				xfer("download:g_s")
				sleepComp("client-post", post)

				bd.Add(comm, comp, schedT)
				ledger.AddIteration(cl.ID)
			}

			// Autoscaled clients depart when done: persistent state
			// leaves the server (offloaded host-side), which lets a
			// draining server finish emptying. Static runs keep the
			// historical semantics — state held until the run ends.
			if cfg.Autoscale != nil {
				scheduler.Complete(cl.ID)
				scheduler.Complete("persist:" + cl.ID)
				srv.devices.FreeOwner("persist:" + cl.ID)
				mgr.Depart(cl.ID)
				sampleMem(p.Now())
				decommission(srv)
			}
		})
	}

	if err := kernel.Run(); err != nil {
		return nil, fmt.Errorf("menos simulation: %w", err)
	}
	if fleetErr != nil {
		return nil, fmt.Errorf("menos fleet: %w", fleetErr)
	}
	if cfg.Autoscale != nil {
		for _, srv := range servers {
			if !srv.removed {
				persistent += srv.devices.Used()
			}
		}
	}

	agg := &trace.Breakdown{}
	for _, r := range results {
		agg.Merge(r.Breakdown)
	}
	var schedStats sched.Stats
	var admission sched.AdmissionStats
	for _, srv := range servers {
		st := srv.scheduler.Stats()
		schedStats.Submitted += st.Submitted
		schedStats.Granted += st.Granted
		schedStats.Backfilled += st.Backfilled
		schedStats.Completed += st.Completed
		schedStats.Decisions += st.Decisions
		schedStats.DecisionTime += st.DecisionTime
		if st.MaxQueueDepth > schedStats.MaxQueueDepth {
			schedStats.MaxQueueDepth = st.MaxQueueDepth
		}
		ast := srv.scheduler.AdmissionStats()
		admission.Transitions += ast.Transitions
		admission.Shed += ast.Shed
		admission.Deferred += ast.Deferred
		if ast.State > admission.State {
			admission.State = ast.State
		}
		if ast.P99 > admission.P99 {
			admission.P99 = ast.P99
		}
	}
	fstats := mgr.Stats()
	return &Result{
		Mode:            ModeMenos,
		Clients:         results,
		Aggregate:       agg,
		PersistentBytes: persistent,
		PeakBytes:       persistent + peakTransient(cfg, demands),
		SchedStats:      schedStats,
		Rejected:        rejected,
		Admission:       admission,
		Waits:           waits,
		MemSamples:      samples,
		OverlapHidden:   hiddenTotal,
		SimulatedTime:   kernel.Now(),
		Fleet: FleetStats{
			Policy:         placer.Name(),
			StartServers:   cfg.Servers,
			FinalServers:   mgr.ActiveServers(),
			PeakServers:    peakServers,
			Placements:     fstats.Placements,
			Migrations:     fstats.Migrations,
			ScaleEvents:    fstats.ScaleEvents,
			ImbalanceRatio: mgr.Imbalance(),
		},
	}, nil
}

// waitGrant submits a request to the Menos scheduler and parks the
// process until granted, returning the wait (plus the fixed scheduler
// decision cost). An admission shed is returned as a *sched.
// OverloadError for the caller to back off and resubmit.
func waitGrant(p *sim.Proc, s *sched.Scheduler, id string, kind sched.RequestKind, bytes int64) (time.Duration, error) {
	start := p.Now()
	granted := false
	sig := p.Kernel().NewSignal()
	err := s.Submit(id, kind, bytes, func() {
		granted = true
		sig.Fire()
	})
	if err != nil {
		if errors.Is(err, sched.ErrOverloaded) {
			return costmodel.SchedulerDecisionTime, err
		}
		// Requests that can never fit stall the client forever; the
		// deadlock detector will surface it with this reason.
		sig.Wait(p, fmt.Sprintf("unschedulable: %v", err))
	}
	for !granted {
		sig.Wait(p, "memory grant "+id)
	}
	return p.Now() - start + costmodel.SchedulerDecisionTime, nil
}

// peakTransient estimates the transient memory above the persistent
// floor: the largest single backward footprint that can be in flight.
func peakTransient(cfg Config, demands map[string]struct{ fwd, bwd int64 }) int64 {
	var maxBwd int64
	for _, d := range demands {
		b := d.bwd
		if b == 0 {
			b = d.fwd
		}
		if b > maxBwd {
			maxBwd = b
		}
	}
	return maxBwd
}
