package splitsim

import (
	"errors"
	"fmt"
	"time"

	"menos/internal/costmodel"
	"menos/internal/gpu"
	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/sched"
	"menos/internal/sim"
	"menos/internal/trace"
)

// runMenos simulates the Menos server: one shared base-model copy,
// per-client serving processes, on-demand memory allocation under the
// configured policy, and the Algorithm-2 scheduler.
//
// GPU compute is modeled as freely time-shared (CUDA streams): the
// scarce, scheduled resource is memory, exactly as in the paper. The
// growing cost of concurrency appears as the release/re-collection
// overhead of Table 2, which scales with the per-GPU client density.
// serverSim is one Menos server in the simulation: its own GPUs, base
// copy and scheduler.
type serverSim struct {
	devices   *gpu.DeviceSet
	scheduler *sched.Scheduler
	clients   int
}

func runMenos(cfg Config) (*Result, error) {
	kernel := sim.New()
	link := cfg.LinkPreset(kernel)

	// One server instance per cfg.Servers, each with its own shared
	// base copy (sharded over its GPUs), manager context and
	// scheduler. Clients are assigned round-robin.
	w0 := cfg.Clients[0].Workload
	servers := make([]*serverSim, cfg.Servers)
	serverOf := func(i int) *serverSim { return servers[i%cfg.Servers] }
	for s := range servers {
		devices, err := gpu.NewDeviceSet(cfg.GPUSpec, cfg.GPUs)
		if err != nil {
			return nil, err
		}
		devices.Instrument(cfg.Metrics)
		if _, err := devices.AllocSharded("base-model", w0.ServerBaseBytes()); err != nil {
			return nil, fmt.Errorf("server %d: loading shared base model: %w", s, err)
		}
		if _, err := devices.Alloc("manager", memmodel.ManagerOverheadBytes); err != nil {
			return nil, fmt.Errorf("server %d: manager context: %w", s, err)
		}
		servers[s] = &serverSim{devices: devices}
	}
	for i, cl := range cfg.Clients {
		srv := serverOf(i)
		srv.clients++
		if _, err := srv.devices.Alloc("persist:"+cl.ID, cl.Workload.PersistentClientBytes()); err != nil {
			return nil, fmt.Errorf("client %q persistent state: %w", cl.ID, err)
		}
	}
	var persistent int64
	for _, srv := range servers {
		persistent += srv.devices.Used()
	}

	// Profiling phase (§3.3): the server measures each client's
	// forward and backward memory demands before serving. In the
	// simulation the profiler is the analytic model; the real runtime
	// measures instantiated caches.
	demands := make(map[string]struct{ fwd, bwd int64 }, len(cfg.Clients))
	for _, cl := range cfg.Clients {
		d := struct{ fwd, bwd int64 }{
			fwd: cl.Workload.NoGradForwardBytes(),
			bwd: cl.Workload.BackwardPeakBytes(),
		}
		switch cfg.Policy {
		case PolicyReleaseOnWait:
			d.fwd = cl.Workload.ActivationBytes()
		case PolicyPreserve, PolicyPersistAll:
			d.fwd = cl.Workload.ActivationBytes()
			d.bwd = 0 // memory held since forward
		}
		demands[cl.ID] = d
	}

	// The virtual clock: scheduler wait times and spans are measured in
	// kernel time, so the telemetry of a simulated run reads exactly
	// like a real one (only ~10^6× faster to produce).
	for _, srv := range servers {
		srv.scheduler = sched.New(srv.devices.Available(), cfg.SchedPol)
		srv.scheduler.Instrument(cfg.Metrics, obs.ClockFunc(kernel.Now))
		if cfg.SLO.Enabled() {
			if err := srv.scheduler.EnableAdmission(cfg.SLO, obs.ClockFunc(kernel.Now)); err != nil {
				return nil, fmt.Errorf("admission control: %w", err)
			}
		}
	}

	results := make([]ClientResult, len(cfg.Clients))
	for i := range cfg.Clients {
		results[i] = ClientResult{ID: cfg.Clients[i].ID, Breakdown: &trace.Breakdown{}}
	}
	var waits WaitStats
	var rejected int64 // admission sheds; kernel is single-threaded
	var samples []MemSample
	sampleMem := func(at time.Duration) {
		var used int64
		for _, srv := range servers {
			used += srv.scheduler.Total() - srv.scheduler.Available()
		}
		// Coalesce same-instant transitions: keep the last value.
		if n := len(samples); n > 0 && samples[n-1].At == at {
			samples[n-1].Bytes = used
			return
		}
		samples = append(samples, MemSample{At: at, Bytes: used})
	}
	recordWait := func(kind sched.RequestKind, d time.Duration) {
		if kind == sched.KindForward {
			waits.ForwardTotal += d
			waits.Forwards++
		} else {
			waits.BackwardTotal += d
			waits.Backwards++
		}
	}

	for i, cl := range cfg.Clients {
		cl := cl
		srv := serverOf(i)
		scheduler := srv.scheduler
		bd := results[i].Breakdown
		cost := costmodel.New(cfg.ServerPerf, cl.Workload)
		clientTotal := costmodel.ClientComputeTime(cl.Platform, cl.Workload)
		pre, mid, post := clientPhases(clientTotal)
		demand := demands[cl.ID]
		transfer := cl.Workload.TransferBytes()
		// Release-overhead concurrency: clients per GPU on this
		// client's server (allocator fragmentation is per-device).
		density := (srv.clients + cfg.GPUs - 1) / cfg.GPUs
		releaseCost := cost.ReleaseOverhead(density)

		kernel.Spawn("client:"+cl.ID, func(p *sim.Proc) {
			// Every accumulator update below also records a span with
			// identical virtual-time bounds, so summing spans by
			// category reconstructs the Breakdown exactly (the bench's
			// -trace-out parity check relies on this).
			var comm, comp, schedT time.Duration
			sleepComp := func(name string, d time.Duration) {
				start := p.Now()
				p.Sleep(d)
				comp += d
				cfg.Tracer.Record(cl.ID, name, "compute", start, d)
			}
			xfer := func(name string) {
				start := p.Now()
				d := link.Transfer(p, transfer)
				comm += d
				cfg.Tracer.Record(cl.ID, name, "comm", start, d)
			}
			grant := func(kind sched.RequestKind, bytes int64) {
				start := p.Now()
				d, err := waitGrant(p, scheduler, cl.ID, kind, bytes)
				for err != nil {
					// Admission shed: back off for the server's hint
					// and resubmit, exactly like a real client. The
					// recorded wait spans all attempts and backoffs.
					// The backoff is jittered per client (deterministic,
					// keyed by client index) so shed clients do not
					// resubmit in a synchronized herd.
					rejected++
					var ov *sched.OverloadError
					errors.As(err, &ov)
					p.Sleep(ov.RetryAfter + ov.RetryAfter*time.Duration(i%8)/8)
					if d, err = waitGrant(p, scheduler, cl.ID, kind, bytes); err == nil {
						d = p.Now() - start + costmodel.SchedulerDecisionTime
					}
				}
				recordWait(kind, d)
				sampleMem(p.Now())
				schedT += d
				// d includes the fixed scheduler decision cost, which
				// does not advance virtual time; keep the span equal to
				// what the Breakdown records.
				cfg.Tracer.Record(cl.ID, "wait:"+kind.String(), "sched", start, d)
			}
			release := func() {
				scheduler.Complete(cl.ID)
				sampleMem(p.Now())
			}
			if cl.StartDelay > 0 {
				p.Sleep(cl.StartDelay)
			}
			persisted := false
			for iter := 0; iter < cfg.Iterations; iter++ {
				comm, comp, schedT = 0, 0, 0

				// Client computes the input section and uploads x_c.
				sleepComp("client-pre", pre)
				xfer("upload:x_c")

				// ---- Server: forward request ----
				switch cfg.Policy {
				case PolicyPersistAll:
					// Reserve once, on the first iteration, forever.
					if !persisted {
						grant(sched.KindForward, demand.fwd)
						persisted = true
					}
					sleepComp("forward", cost.ForwardTime(cl.Workload))
				case PolicyPreserve, PolicyReleaseOnWait:
					grant(sched.KindForward, demand.fwd)
					sleepComp("forward", cost.ForwardTime(cl.Workload))
					if cfg.Policy == PolicyReleaseOnWait {
						release()
						sleepComp("release", releaseCost/2)
					}
					// PolicyPreserve: memory stays allocated through
					// the gradient wait.
				default: // PolicyOnDemand, Fig. 3(d)
					grant(sched.KindForward, demand.fwd)
					sleepComp("forward", cost.NoGradForwardTime(cl.Workload))
					release()
				}

				// Server returns x_s; client runs the output section,
				// computes the loss, and uploads g_c.
				xfer("download:x_s")
				sleepComp("client-mid", mid)
				xfer("upload:g_c")

				// ---- Server: backward request ----
				switch cfg.Policy {
				case PolicyPersistAll:
					sleepComp("backward", cost.BackwardTime(cl.Workload))
				case PolicyPreserve:
					sleepComp("backward", cost.BackwardTime(cl.Workload))
					release()
					sleepComp("release", releaseCost)
				case PolicyReleaseOnWait:
					grant(sched.KindBackward, demand.bwd)
					sleepComp("backward", cost.ForwardTime(cl.Workload)+cost.BackwardTime(cl.Workload))
					release()
					sleepComp("release", releaseCost/2)
				default: // PolicyOnDemand
					grant(sched.KindBackward, demand.bwd)
					// Re-forward + backward.
					sleepComp("re-forward+backward",
						cost.ForwardTime(cl.Workload)+cost.BackwardTime(cl.Workload))
					release()
					// Releasing and re-collecting fragmented memory
					// happens after the grant is returned (Table 2's
					// growing overhead).
					sleepComp("release", releaseCost)
				}
				sleepComp("optimizer", costmodel.OptimizerStepTime)

				// Server returns g_s; client finishes its backward and
				// optimizer step.
				xfer("download:g_s")
				sleepComp("client-post", post)

				bd.Add(comm, comp, schedT)
			}
		})
	}

	if err := kernel.Run(); err != nil {
		return nil, fmt.Errorf("menos simulation: %w", err)
	}

	agg := &trace.Breakdown{}
	for _, r := range results {
		agg.Merge(r.Breakdown)
	}
	var schedStats sched.Stats
	var admission sched.AdmissionStats
	for _, srv := range servers {
		st := srv.scheduler.Stats()
		schedStats.Submitted += st.Submitted
		schedStats.Granted += st.Granted
		schedStats.Backfilled += st.Backfilled
		schedStats.Completed += st.Completed
		schedStats.Decisions += st.Decisions
		schedStats.DecisionTime += st.DecisionTime
		if st.MaxQueueDepth > schedStats.MaxQueueDepth {
			schedStats.MaxQueueDepth = st.MaxQueueDepth
		}
		ast := srv.scheduler.AdmissionStats()
		admission.Transitions += ast.Transitions
		admission.Shed += ast.Shed
		admission.Deferred += ast.Deferred
		if ast.State > admission.State {
			admission.State = ast.State
		}
		if ast.P99 > admission.P99 {
			admission.P99 = ast.P99
		}
	}
	return &Result{
		Mode:            ModeMenos,
		Clients:         results,
		Aggregate:       agg,
		PersistentBytes: persistent,
		PeakBytes:       persistent + peakTransient(cfg, demands),
		SchedStats:      schedStats,
		Rejected:        rejected,
		Admission:       admission,
		Waits:           waits,
		MemSamples:      samples,
		SimulatedTime:   kernel.Now(),
	}, nil
}

// waitGrant submits a request to the Menos scheduler and parks the
// process until granted, returning the wait (plus the fixed scheduler
// decision cost). An admission shed is returned as a *sched.
// OverloadError for the caller to back off and resubmit.
func waitGrant(p *sim.Proc, s *sched.Scheduler, id string, kind sched.RequestKind, bytes int64) (time.Duration, error) {
	start := p.Now()
	granted := false
	sig := p.Kernel().NewSignal()
	err := s.Submit(id, kind, bytes, func() {
		granted = true
		sig.Fire()
	})
	if err != nil {
		if errors.Is(err, sched.ErrOverloaded) {
			return costmodel.SchedulerDecisionTime, err
		}
		// Requests that can never fit stall the client forever; the
		// deadlock detector will surface it with this reason.
		sig.Wait(p, fmt.Sprintf("unschedulable: %v", err))
	}
	for !granted {
		sig.Wait(p, "memory grant "+id)
	}
	return p.Now() - start + costmodel.SchedulerDecisionTime, nil
}

// peakTransient estimates the transient memory above the persistent
// floor: the largest single backward footprint that can be in flight.
func peakTransient(cfg Config, demands map[string]struct{ fwd, bwd int64 }) int64 {
	var maxBwd int64
	for _, d := range demands {
		b := d.bwd
		if b == 0 {
			b = d.fwd
		}
		if b > maxBwd {
			maxBwd = b
		}
	}
	return maxBwd
}
