package splitsim

import (
	"fmt"
	"time"

	"menos/internal/costmodel"
	"menos/internal/gpu"
	"menos/internal/memmodel"
	"menos/internal/sched"
	"menos/internal/sim"
	"menos/internal/trace"
)

// runMenos simulates the Menos server: one shared base-model copy,
// per-client serving processes, on-demand memory allocation under the
// configured policy, and the Algorithm-2 scheduler.
//
// GPU compute is modeled as freely time-shared (CUDA streams): the
// scarce, scheduled resource is memory, exactly as in the paper. The
// growing cost of concurrency appears as the release/re-collection
// overhead of Table 2, which scales with the per-GPU client density.
// serverSim is one Menos server in the simulation: its own GPUs, base
// copy and scheduler.
type serverSim struct {
	devices   *gpu.DeviceSet
	scheduler *sched.Scheduler
	clients   int
}

func runMenos(cfg Config) (*Result, error) {
	kernel := sim.New()
	link := cfg.LinkPreset(kernel)

	// One server instance per cfg.Servers, each with its own shared
	// base copy (sharded over its GPUs), manager context and
	// scheduler. Clients are assigned round-robin.
	w0 := cfg.Clients[0].Workload
	servers := make([]*serverSim, cfg.Servers)
	serverOf := func(i int) *serverSim { return servers[i%cfg.Servers] }
	for s := range servers {
		devices, err := gpu.NewDeviceSet(cfg.GPUSpec, cfg.GPUs)
		if err != nil {
			return nil, err
		}
		if _, err := devices.AllocSharded("base-model", w0.ServerBaseBytes()); err != nil {
			return nil, fmt.Errorf("server %d: loading shared base model: %w", s, err)
		}
		if _, err := devices.Alloc("manager", memmodel.ManagerOverheadBytes); err != nil {
			return nil, fmt.Errorf("server %d: manager context: %w", s, err)
		}
		servers[s] = &serverSim{devices: devices}
	}
	for i, cl := range cfg.Clients {
		srv := serverOf(i)
		srv.clients++
		if _, err := srv.devices.Alloc("persist:"+cl.ID, cl.Workload.PersistentClientBytes()); err != nil {
			return nil, fmt.Errorf("client %q persistent state: %w", cl.ID, err)
		}
	}
	var persistent int64
	for _, srv := range servers {
		persistent += srv.devices.Used()
	}

	// Profiling phase (§3.3): the server measures each client's
	// forward and backward memory demands before serving. In the
	// simulation the profiler is the analytic model; the real runtime
	// measures instantiated caches.
	demands := make(map[string]struct{ fwd, bwd int64 }, len(cfg.Clients))
	for _, cl := range cfg.Clients {
		d := struct{ fwd, bwd int64 }{
			fwd: cl.Workload.NoGradForwardBytes(),
			bwd: cl.Workload.BackwardPeakBytes(),
		}
		switch cfg.Policy {
		case PolicyReleaseOnWait:
			d.fwd = cl.Workload.ActivationBytes()
		case PolicyPreserve, PolicyPersistAll:
			d.fwd = cl.Workload.ActivationBytes()
			d.bwd = 0 // memory held since forward
		}
		demands[cl.ID] = d
	}

	for _, srv := range servers {
		srv.scheduler = sched.New(srv.devices.Available(), cfg.SchedPol)
	}

	results := make([]ClientResult, len(cfg.Clients))
	for i := range cfg.Clients {
		results[i] = ClientResult{ID: cfg.Clients[i].ID, Breakdown: &trace.Breakdown{}}
	}
	var waits WaitStats
	var samples []MemSample
	sampleMem := func(at time.Duration) {
		var used int64
		for _, srv := range servers {
			used += srv.scheduler.Total() - srv.scheduler.Available()
		}
		// Coalesce same-instant transitions: keep the last value.
		if n := len(samples); n > 0 && samples[n-1].At == at {
			samples[n-1].Bytes = used
			return
		}
		samples = append(samples, MemSample{At: at, Bytes: used})
	}
	recordWait := func(kind sched.RequestKind, d time.Duration) {
		if kind == sched.KindForward {
			waits.ForwardTotal += d
			waits.Forwards++
		} else {
			waits.BackwardTotal += d
			waits.Backwards++
		}
	}

	for i, cl := range cfg.Clients {
		cl := cl
		srv := serverOf(i)
		scheduler := srv.scheduler
		bd := results[i].Breakdown
		cost := costmodel.New(cfg.ServerPerf, cl.Workload)
		clientTotal := costmodel.ClientComputeTime(cl.Platform, cl.Workload)
		pre, mid, post := clientPhases(clientTotal)
		demand := demands[cl.ID]
		transfer := cl.Workload.TransferBytes()
		// Release-overhead concurrency: clients per GPU on this
		// client's server (allocator fragmentation is per-device).
		density := (srv.clients + cfg.GPUs - 1) / cfg.GPUs
		releaseCost := cost.ReleaseOverhead(density)

		kernel.Spawn("client:"+cl.ID, func(p *sim.Proc) {
			grant := func(kind sched.RequestKind, bytes int64) time.Duration {
				d := waitGrant(p, scheduler, cl.ID, kind, bytes)
				recordWait(kind, d)
				sampleMem(p.Now())
				return d
			}
			release := func() {
				scheduler.Complete(cl.ID)
				sampleMem(p.Now())
			}
			if cl.StartDelay > 0 {
				p.Sleep(cl.StartDelay)
			}
			persisted := false
			for iter := 0; iter < cfg.Iterations; iter++ {
				var comm, comp, schedT time.Duration

				// Client computes the input section and uploads x_c.
				p.Sleep(pre)
				comp += pre
				comm += link.Transfer(p, transfer)

				// ---- Server: forward request ----
				switch cfg.Policy {
				case PolicyPersistAll:
					// Reserve once, on the first iteration, forever.
					if !persisted {
						schedT += grant(sched.KindForward, demand.fwd)
						persisted = true
					}
					fwd := cost.ForwardTime(cl.Workload)
					p.Sleep(fwd)
					comp += fwd
				case PolicyPreserve, PolicyReleaseOnWait:
					schedT += grant(sched.KindForward, demand.fwd)
					fwd := cost.ForwardTime(cl.Workload)
					p.Sleep(fwd)
					comp += fwd
					if cfg.Policy == PolicyReleaseOnWait {
						release()
						p.Sleep(releaseCost / 2)
						comp += releaseCost / 2
					}
					// PolicyPreserve: memory stays allocated through
					// the gradient wait.
				default: // PolicyOnDemand, Fig. 3(d)
					schedT += grant(sched.KindForward, demand.fwd)
					fwd := cost.NoGradForwardTime(cl.Workload)
					p.Sleep(fwd)
					comp += fwd
					release()
				}

				// Server returns x_s; client runs the output section,
				// computes the loss, and uploads g_c.
				comm += link.Transfer(p, transfer)
				p.Sleep(mid)
				comp += mid
				comm += link.Transfer(p, transfer)

				// ---- Server: backward request ----
				switch cfg.Policy {
				case PolicyPersistAll:
					bwd := cost.BackwardTime(cl.Workload)
					p.Sleep(bwd)
					comp += bwd
				case PolicyPreserve:
					bwd := cost.BackwardTime(cl.Workload)
					p.Sleep(bwd)
					comp += bwd
					release()
					p.Sleep(releaseCost)
					comp += releaseCost
				case PolicyReleaseOnWait:
					schedT += grant(sched.KindBackward, demand.bwd)
					bwd := cost.ForwardTime(cl.Workload) + cost.BackwardTime(cl.Workload)
					p.Sleep(bwd)
					comp += bwd
					release()
					p.Sleep(releaseCost / 2)
					comp += releaseCost / 2
				default: // PolicyOnDemand
					schedT += grant(sched.KindBackward, demand.bwd)
					bwd := cost.ForwardTime(cl.Workload) + // re-forward
						cost.BackwardTime(cl.Workload)
					p.Sleep(bwd)
					comp += bwd
					release()
					// Releasing and re-collecting fragmented memory
					// happens after the grant is returned (Table 2's
					// growing overhead).
					p.Sleep(releaseCost)
					comp += releaseCost
				}
				p.Sleep(costmodel.OptimizerStepTime)
				comp += costmodel.OptimizerStepTime

				// Server returns g_s; client finishes its backward and
				// optimizer step.
				comm += link.Transfer(p, transfer)
				p.Sleep(post)
				comp += post

				bd.Add(comm, comp, schedT)
			}
		})
	}

	if err := kernel.Run(); err != nil {
		return nil, fmt.Errorf("menos simulation: %w", err)
	}

	agg := &trace.Breakdown{}
	for _, r := range results {
		agg.Merge(r.Breakdown)
	}
	var schedStats sched.Stats
	for _, srv := range servers {
		st := srv.scheduler.Stats()
		schedStats.Submitted += st.Submitted
		schedStats.Granted += st.Granted
		schedStats.Backfilled += st.Backfilled
		schedStats.Completed += st.Completed
		schedStats.Decisions += st.Decisions
		schedStats.DecisionTime += st.DecisionTime
		if st.MaxQueueDepth > schedStats.MaxQueueDepth {
			schedStats.MaxQueueDepth = st.MaxQueueDepth
		}
	}
	return &Result{
		Mode:            ModeMenos,
		Clients:         results,
		Aggregate:       agg,
		PersistentBytes: persistent,
		PeakBytes:       persistent + peakTransient(cfg, demands),
		SchedStats:      schedStats,
		Waits:           waits,
		MemSamples:      samples,
		SimulatedTime:   kernel.Now(),
	}, nil
}

// waitGrant submits a request to the Menos scheduler and parks the
// process until granted, returning the wait (plus the fixed scheduler
// decision cost).
func waitGrant(p *sim.Proc, s *sched.Scheduler, id string, kind sched.RequestKind, bytes int64) time.Duration {
	start := p.Now()
	granted := false
	sig := p.Kernel().NewSignal()
	err := s.Submit(id, kind, bytes, func() {
		granted = true
		sig.Fire()
	})
	if err != nil {
		// Requests that can never fit stall the client forever; the
		// deadlock detector will surface it with this reason.
		sig.Wait(p, fmt.Sprintf("unschedulable: %v", err))
	}
	for !granted {
		sig.Wait(p, "memory grant "+id)
	}
	return p.Now() - start + costmodel.SchedulerDecisionTime
}

// peakTransient estimates the transient memory above the persistent
// floor: the largest single backward footprint that can be in flight.
func peakTransient(cfg Config, demands map[string]struct{ fwd, bwd int64 }) int64 {
	var maxBwd int64
	for _, d := range demands {
		b := d.bwd
		if b == 0 {
			b = d.fwd
		}
		if b > maxBwd {
			maxBwd = b
		}
	}
	return maxBwd
}
