package splitsim

import (
	"os"
	"strings"
	"testing"
	"time"

	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/sched"
)

// checkParity asserts that summing spans by category reconstructs the
// run's aggregate Breakdown within tol (the acceptance bound is 1%; the
// implementation is exact by construction).
func checkParity(t *testing.T, tracer *obs.Tracer, r *Result, tol float64) {
	t.Helper()
	if tracer.Dropped() > 0 {
		t.Fatalf("tracer dropped %d spans; raise the limit", tracer.Dropped())
	}
	totals := tracer.CatTotals()
	comm, comp, sched := r.Aggregate.Totals()
	want := map[string]time.Duration{
		"comm":    comm,
		"compute": comp,
		"sched":   sched,
	}
	for cat, w := range want {
		got := totals[cat]
		diff := float64(got-w) / float64(w)
		if w == 0 {
			if got != 0 {
				t.Errorf("%s: spans total %v, breakdown 0", cat, got)
			}
			continue
		}
		if diff < 0 {
			diff = -diff
		}
		if diff > tol {
			t.Errorf("%s: spans total %v, breakdown %v (%.2f%% off)", cat, got, w, diff*100)
		}
	}
}

func TestMenosSpansReconstructBreakdown(t *testing.T) {
	tracer := obs.NewTracer(nil) // explicit-time records only
	cfg := menosCfg(6, memmodel.PaperOPTWorkload())
	cfg.Tracer = tracer
	r := run(t, cfg)
	checkParity(t, tracer, r, 0.01)

	// No wall-clock leakage: every span must start within the simulated
	// window. A time.Now()-based span would start ~56 years in.
	for _, s := range tracer.Spans() {
		if s.Start < 0 || s.Start > r.SimulatedTime {
			t.Fatalf("span %q/%q starts at %v, outside simulated time %v",
				s.Track, s.Name, s.Start, r.SimulatedTime)
		}
	}
}

func TestVanillaSpansReconstructBreakdown(t *testing.T) {
	tracer := obs.NewTracer(nil)
	cfg := vanillaCfg(4, memmodel.PaperOPTWorkload())
	cfg.Tracer = tracer
	r := run(t, cfg)
	checkParity(t, tracer, r, 0.01)
}

func TestMenosMetricsInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := menosCfg(6, memmodel.PaperOPTWorkload())
	cfg.Metrics = reg
	r := run(t, cfg)

	granted := reg.Counter(obs.MetricSchedGranted).Value()
	backfilled := reg.Counter(obs.MetricSchedBackfilled).Value()
	if got := granted + backfilled; got != int64(r.SchedStats.Granted+r.SchedStats.Backfilled) {
		t.Errorf("granted+backfilled counter = %d, scheduler stats say %d",
			got, r.SchedStats.Granted+r.SchedStats.Backfilled)
	}
	if v := reg.Counter(obs.MetricGPUAllocOps).Value(); v == 0 {
		t.Error("no GPU allocations counted")
	}
	// Wait-time histogram must be measured on the virtual clock: the
	// total must be consistent with the simulation's own wait stats
	// (which include the fixed decision cost per grant), not wall time.
	snap := reg.Histogram(obs.MetricSchedWaitSeconds, nil).Snapshot()
	simWaits := (r.Waits.ForwardTotal + r.Waits.BackwardTotal).Seconds()
	if snap.Count == 0 {
		t.Fatal("no scheduler waits observed")
	}
	if snap.Sum > simWaits {
		t.Errorf("histogram wait sum %.3fs exceeds simulated waits %.3fs (wall-clock leak?)",
			snap.Sum, simWaits)
	}
}

// TestTraceIDsDeterministic: two traced runs of the same config emit
// byte-identical span streams — same order, timing, and trace IDs — and
// every iteration-scoped span carries the obs.IterTraceID a TCP client
// would stamp, so simulator and wire traces correlate.
func TestTraceIDsDeterministic(t *testing.T) {
	record := func() []obs.Span {
		tracer := obs.NewTracer(nil)
		cfg := menosCfg(3, memmodel.PaperOPTWorkload())
		cfg.Tracer = tracer
		run(t, cfg)
		return tracer.Spans()
	}
	a, b := record(), record()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}

	// Per-client compute spans must cycle through the deterministic
	// iteration trace IDs in order.
	want := make(map[uint64]bool)
	for iter := 0; iter < 8; iter++ {
		want[obs.IterTraceID("client-1", iter)] = true
	}
	var seen int
	for _, s := range a {
		if s.Track != "client-1" || s.Cat != "compute" {
			continue
		}
		if s.TraceID == 0 {
			t.Fatalf("compute span %q has no trace ID", s.Name)
		}
		if !want[s.TraceID] {
			t.Fatalf("compute span %q trace ID %x not an IterTraceID", s.Name, s.TraceID)
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("no compute spans for client-1")
	}
}

// TestMenosShedTriggersFlight: an over-subscribed traced run with a
// flight recorder attached snapshots shed and admission transitions,
// and the snapshot spans carry the run's trace IDs.
func TestMenosShedTriggersFlight(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(nil)
	fr, err := obs.NewFlightRecorder(obs.FlightConfig{
		Dir:         t.TempDir(),
		MinInterval: time.Nanosecond,
	}, reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()

	// Llama at 6 clients over-subscribes the V100 hard enough to shed.
	cfg := menosCfg(6, memmodel.PaperLlamaWorkload())
	cfg.Metrics = reg
	cfg.Tracer = tracer
	cfg.SLO = sched.SLO{TargetP99: 2 * time.Second, Window: 40 * time.Second}
	cfg.Flight = fr
	r := run(t, cfg)
	if r.Rejected == 0 {
		t.Skip("config did not shed; flight path not exercised")
	}
	if err := fr.Err(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(fr.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"reason":"`+obs.FlightReasonShed+`"`) {
		t.Fatal("no shed snapshot in flight recording")
	}
	if !strings.Contains(string(data), `"trace_id":"`) {
		t.Fatal("flight snapshot spans carry no trace IDs")
	}
}

func TestVanillaSwapMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	// Four OPT clients over-subscribe one V100, forcing swapping.
	cfg := vanillaCfg(4, memmodel.PaperOPTWorkload())
	cfg.Metrics = reg
	run(t, cfg)

	ops := reg.Counter(obs.MetricSwapOps).Value()
	bytes := reg.Counter(obs.MetricSwapBytes).Value()
	if ops == 0 || bytes == 0 {
		t.Fatalf("over-subscribed vanilla run recorded no swaps (ops=%d bytes=%d)", ops, bytes)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), obs.MetricSwapBytes) {
		t.Error("swap bytes missing from Prometheus export")
	}
}
