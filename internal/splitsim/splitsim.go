// Package splitsim runs split fine-tuning workloads on the performance
// plane: clients, the WAN link, the server's GPUs, the Menos scheduler
// and the vanilla task-swapping baseline, all as deterministic
// discrete-event processes. One simulated "154-second" iteration takes
// microseconds of wall time, which is what makes regenerating every
// timing figure of the paper practical.
package splitsim

import (
	"errors"
	"fmt"
	"time"

	"menos/internal/costmodel"
	"menos/internal/fleet"
	"menos/internal/gpu"
	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/sched"
	"menos/internal/sim"
	"menos/internal/simnet"
	"menos/internal/trace"
)

// ErrConfig is returned (wrapped) for invalid simulation configs.
var ErrConfig = errors.New("splitsim: invalid config")

// Mode selects the server system under test.
type Mode int

// Server modes.
const (
	ModeMenos   Mode = iota + 1 // base-model sharing + on-demand allocation
	ModeVanilla                 // per-client replicas + task-level swapping
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeMenos:
		return "menos"
	case ModeVanilla:
		return "vanilla"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// MemPolicy selects the Menos memory-allocation policy, one per
// sub-figure of Fig. 3.
type MemPolicy int

// Memory policies.
const (
	// PolicyOnDemand is Fig. 3(d): no-grad first forward, release on
	// every wait, re-forward before backward. The Menos default.
	PolicyOnDemand MemPolicy = iota + 1
	// PolicyReleaseOnWait is Fig. 3(c): grad-enabled first forward,
	// released while waiting for gradients, re-forward on backward.
	PolicyReleaseOnWait
	// PolicyPreserve is Fig. 3(b): activations held from forward
	// until the backward completes (released between iterations).
	PolicyPreserve
	// PolicyPersistAll is Fig. 3(a): activation memory reserved for
	// the client's whole session (vanilla-style, but with base
	// sharing).
	PolicyPersistAll
)

// String returns the policy name.
func (p MemPolicy) String() string {
	switch p {
	case PolicyOnDemand:
		return "on-demand"
	case PolicyReleaseOnWait:
		return "release-on-wait"
	case PolicyPreserve:
		return "preserve"
	case PolicyPersistAll:
		return "persist-all"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ClientSpec describes one simulated client.
type ClientSpec struct {
	ID       string
	Workload memmodel.Workload
	Platform costmodel.Perf // client-side compute (GPU or CPU)
	// StartDelay staggers the client's arrival (client churn: the
	// vanilla baseline's task-level sharing exists precisely to serve
	// "new incoming clients").
	StartDelay time.Duration
}

// Config describes one simulation run.
type Config struct {
	Mode     Mode
	Policy   MemPolicy    // Menos only; zero value means PolicyOnDemand
	SchedPol sched.Policy // Menos only; zero value means FCFS+backfill
	// SLO, when enabled, activates adaptive admission control on every
	// simulated scheduler (docs/ADMISSION.md), evaluated in virtual
	// time. Shed requests back off for the controller's retry-after
	// hint and resubmit; Result.Rejected counts the sheds. The zero
	// value leaves the grant sequence identical to a plain run.
	SLO     sched.SLO
	GPUSpec gpu.Spec
	GPUs    int // per server
	// Servers scales out horizontally (Menos mode): each server hosts
	// its own shared base copy on its own GPUs with its own scheduler
	// (the paper's "GPUs distributed across multiple servers", managed
	// by a distributed runtime). Clients are assigned by Placer.
	Servers int
	// Placer chooses the server for each client (Menos multi-server
	// runs). Nil means fleet.RoundRobin, which is bit-identical to the
	// historical i mod Servers assignment — existing configs reproduce
	// their exact virtual-time traces.
	Placer fleet.Placer
	// Autoscale, when set, lets the fleet grow and shrink during the
	// run (Menos mode only): Servers becomes the *starting* size,
	// clients are placed when they arrive instead of up front, an
	// autoscaler evaluated on the virtual clock adds or drains servers
	// from queue-depth and admission signals, and clients on draining
	// servers migrate at iteration boundaries (paying the transfer
	// cost for their persistent state). Nil keeps the fleet static.
	Autoscale *fleet.AutoscaleConfig
	// Batch, when set and enabled, coalesces compatible server phases
	// (same server, request kind, cut and sequence length) into batched
	// kernel invocations formed in virtual time under the policy's
	// size/hold/byte limits (docs/BATCHING.md). Batched mode models the
	// device as owned by one invocation at a time, so a MaxSize-1
	// policy is the serialized baseline the multilora sweep compares
	// against. Menos mode with PolicyOnDemand and a static fleet only.
	Batch *sched.BatchPolicy
	// WireCodec compresses the activation/gradient payloads on the
	// simulated link (docs/WIRE.md): every x_c/x_s/g_c/g_s transfer
	// ships codec.WireRatio() of its fp32 bytes (fp16 ½, int8 ¼; the
	// per-row scale overhead is negligible at model widths and is
	// dropped here). Quantization compute is not modeled — the real
	// plane's menos_wire_codec_seconds shows it is orders of magnitude
	// below the link time this knob exists to shrink. The zero value
	// (CodecFP32) transfers raw bytes, bit-identical to historical runs.
	WireCodec quant.Codec
	// Overlap enables comm/compute pipelining (docs/WIRE.md): each
	// iteration's client-local compute runs concurrently with the
	// wire+server leg, modeling the steady state of the double-buffered
	// microbatch schedule where iteration time is max(wire, client)
	// instead of their sum. Menos mode with PolicyOnDemand, serial
	// (un-batched) serving and a static fleet only — the same envelope
	// the TCP client's StepPipelined supports.
	Overlap    bool
	ServerPerf costmodel.Perf
	Clients    []ClientSpec
	Iterations int
	// LinkPreset builds the client-server link; nil means the paper's
	// WAN.
	LinkPreset func(*sim.Kernel) *simnet.Link
	// Tracer, when set, records every client's per-iteration spans
	// (comm transfers, compute segments, grant waits) in *virtual*
	// time: span timestamps are kernel time, never the wall clock, so
	// a dumped Chrome trace shows the simulated timeline. The span
	// category totals reconstruct the run's trace.Breakdown exactly.
	// Spans carry the same deterministic obs.IterTraceID(client, iter)
	// IDs a real TCP run stamps on the wire, so identical workloads
	// correlate across planes.
	Tracer *obs.Tracer
	// Flight, when set, snapshots the trace window and metrics on shed
	// and admission-state transitions (Menos mode). Snapshots use the
	// synchronous trigger path, so a given config produces the same
	// flight records on every run.
	Flight *obs.FlightRecorder
	// Metrics, when set, instruments the simulated scheduler and GPUs
	// against the registry, with wait times measured on the virtual
	// clock. The vanilla baseline additionally counts swap traffic
	// under menos_swap_*.
	Metrics *obs.Registry
}

func (c *Config) applyDefaults() {
	if c.Policy == 0 {
		c.Policy = PolicyOnDemand
	}
	if c.SchedPol == 0 {
		c.SchedPol = sched.PolicyFCFSBackfill
	}
	if c.GPUs == 0 {
		c.GPUs = 1
	}
	if c.Servers == 0 {
		c.Servers = 1
	}
	if c.GPUSpec.MemoryBytes == 0 {
		c.GPUSpec = gpu.V100()
	}
	if c.ServerPerf.EffectiveFLOPS == 0 {
		c.ServerPerf = costmodel.V100Perf()
	}
	if c.Iterations == 0 {
		c.Iterations = 10
	}
	if c.LinkPreset == nil {
		c.LinkPreset = simnet.WANPreset
	}
}

func (c *Config) validate() error {
	if c.Mode != ModeMenos && c.Mode != ModeVanilla {
		return fmt.Errorf("%w: mode %d", ErrConfig, int(c.Mode))
	}
	if len(c.Clients) == 0 {
		return fmt.Errorf("%w: no clients", ErrConfig)
	}
	if c.Mode == ModeVanilla && c.Servers > 1 {
		return fmt.Errorf("%w: the vanilla baseline models a single server", ErrConfig)
	}
	if c.Mode == ModeVanilla && (c.Autoscale != nil || c.Placer != nil) {
		return fmt.Errorf("%w: the vanilla baseline has no fleet plane", ErrConfig)
	}
	if c.Autoscale != nil {
		if err := c.Autoscale.Validate(); err != nil {
			return fmt.Errorf("%w: autoscale: %v", ErrConfig, err)
		}
		norm := fleet.NewAutoscaler(*c.Autoscale).Config()
		if c.Servers < norm.Min || c.Servers > norm.Max {
			return fmt.Errorf("%w: autoscale: starting Servers=%d outside [Min=%d, Max=%d]",
				ErrConfig, c.Servers, norm.Min, norm.Max)
		}
	}
	if c.Batch != nil {
		if err := c.Batch.Validate(); err != nil {
			return fmt.Errorf("%w: batch: %v", ErrConfig, err)
		}
		if c.Batch.Enabled() {
			if c.Mode != ModeMenos {
				return fmt.Errorf("%w: batching requires Menos mode", ErrConfig)
			}
			if c.Policy != PolicyOnDemand {
				return fmt.Errorf("%w: batching requires the on-demand policy (got %v)", ErrConfig, c.Policy)
			}
			if c.Autoscale != nil {
				return fmt.Errorf("%w: batching requires a static fleet", ErrConfig)
			}
		}
	}
	if _, err := quant.ParseCodec(c.WireCodec.String()); err != nil {
		return fmt.Errorf("%w: wire codec %d", ErrConfig, int(c.WireCodec))
	}
	if c.Overlap {
		if c.Mode != ModeMenos {
			return fmt.Errorf("%w: overlap requires Menos mode", ErrConfig)
		}
		if c.Policy != PolicyOnDemand {
			return fmt.Errorf("%w: overlap requires the on-demand policy (got %v)", ErrConfig, c.Policy)
		}
		if c.Autoscale != nil {
			return fmt.Errorf("%w: overlap requires a static fleet", ErrConfig)
		}
		if c.Batch != nil && c.Batch.Enabled() {
			return fmt.Errorf("%w: overlap and batched serving are mutually exclusive", ErrConfig)
		}
	}
	for i, cl := range c.Clients {
		if cl.ID == "" {
			return fmt.Errorf("%w: client %d has no id", ErrConfig, i)
		}
		if err := cl.Workload.Validate(); err != nil {
			return fmt.Errorf("%w: client %q: %v", ErrConfig, cl.ID, err)
		}
		if cl.Workload.Model.Name != c.Clients[0].Workload.Model.Name {
			return fmt.Errorf("%w: all clients must share one base model (got %q and %q)",
				ErrConfig, c.Clients[0].Workload.Model.Name, cl.Workload.Model.Name)
		}
	}
	return nil
}

// ClientResult is one client's measured breakdown.
type ClientResult struct {
	ID        string
	Breakdown *trace.Breakdown
}

// Result aggregates a simulation run.
type Result struct {
	Mode    Mode
	Clients []ClientResult
	// Aggregate merges all clients.
	Aggregate *trace.Breakdown
	// PersistentBytes is GPU memory held between iterations
	// (Fig. 5's comparison basis).
	PersistentBytes int64
	// PeakBytes is the device-set high-water mark.
	PeakBytes int64
	// SchedStats reports Menos scheduler activity (zero for vanilla).
	SchedStats sched.Stats
	// Rejected counts admission-control sheds (requests that backed
	// off and resubmitted); zero unless Config.SLO is enabled.
	Rejected int64
	// Admission aggregates admission-controller activity across the
	// simulated servers (zero value unless Config.SLO is enabled).
	Admission sched.AdmissionStats
	// Waits breaks scheduling time down by request kind; the paper
	// observes forwards essentially never wait while backwards queue.
	Waits WaitStats
	// MemSamples traces transient scheduled memory over virtual time
	// (Menos mode): one sample per allocation transition. This is the
	// data behind the paper's Fig. 3 usage patterns.
	MemSamples []MemSample
	// OverlapHidden is the total virtual time hidden by comm/compute
	// pipelining, summed over clients and iterations: each iteration's
	// serial cost (comm + comp + sched) minus its wall time. Zero
	// unless Config.Overlap.
	OverlapHidden time.Duration
	// SimulatedTime is the virtual time of the full run.
	SimulatedTime time.Duration
	// Fleet reports the fleet control plane's activity (Menos mode;
	// zero value for vanilla).
	Fleet FleetStats
}

// FleetStats summarises the fleet control plane's run: which placement
// policy decided, how the server count evolved, and how much client
// movement the autoscaler caused.
type FleetStats struct {
	Policy       string
	StartServers int
	FinalServers int
	PeakServers  int
	Placements   int64
	Migrations   int64
	ScaleEvents  int64
	// ImbalanceRatio is max/mean resident clients per active server at
	// the end of the run (1.0 is perfectly balanced; 0 when unused).
	ImbalanceRatio float64
}

// MemSample is one point of the transient-memory timeline.
type MemSample struct {
	At    time.Duration
	Bytes int64
}

// PeakTransientBytes returns the highest sampled transient allocation.
func (r *Result) PeakTransientBytes() int64 {
	var peak int64
	for _, s := range r.MemSamples {
		if s.Bytes > peak {
			peak = s.Bytes
		}
	}
	return peak
}

// TimeAvgTransientBytes returns the time-weighted mean transient
// allocation over the run (samples are step functions between
// transitions).
func (r *Result) TimeAvgTransientBytes() int64 {
	if len(r.MemSamples) == 0 || r.SimulatedTime == 0 {
		return 0
	}
	var weighted float64
	for i, s := range r.MemSamples {
		end := r.SimulatedTime
		if i+1 < len(r.MemSamples) {
			end = r.MemSamples[i+1].At
		}
		weighted += float64(s.Bytes) * float64(end-s.At)
	}
	return int64(weighted / float64(r.SimulatedTime))
}

// DutyCycle returns time-avg / peak transient memory: the fraction of
// the run the GPU's transient memory is actually in use. The paper's
// Fig. 3(d) point is that on-demand allocation drives this far below
// the memory-preserving policies.
func (r *Result) DutyCycle() float64 {
	peak := r.PeakTransientBytes()
	if peak == 0 {
		return 0
	}
	return float64(r.TimeAvgTransientBytes()) / float64(peak)
}

// WaitStats aggregates grant-wait time per request kind.
type WaitStats struct {
	ForwardTotal  time.Duration
	BackwardTotal time.Duration
	Forwards      int
	Backwards     int
}

// AvgForward returns the mean forward grant wait.
func (w WaitStats) AvgForward() time.Duration {
	if w.Forwards == 0 {
		return 0
	}
	return w.ForwardTotal / time.Duration(w.Forwards)
}

// AvgBackward returns the mean backward grant wait.
func (w WaitStats) AvgBackward() time.Duration {
	if w.Backwards == 0 {
		return 0
	}
	return w.BackwardTotal / time.Duration(w.Backwards)
}

// AvgIterationTime returns the mean per-client iteration time,
// matching the Fig. 6 metric.
func (r *Result) AvgIterationTime() time.Duration { return r.Aggregate.AvgTotal() }

// Run executes the simulation to completion.
func Run(cfg Config) (*Result, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	switch cfg.Mode {
	case ModeMenos:
		return runMenos(cfg)
	default:
		return runVanilla(cfg)
	}
}

// HomogeneousClients builds n identical client specs, matching the
// paper's evaluation setup where all clients share one configuration.
func HomogeneousClients(n int, w memmodel.Workload, platform costmodel.Perf) []ClientSpec {
	clients := make([]ClientSpec, n)
	for i := range clients {
		clients[i] = ClientSpec{
			ID:       fmt.Sprintf("client-%d", i+1),
			Workload: w,
			Platform: platform,
		}
	}
	return clients
}

// clientPhases splits the per-iteration client-side compute into the
// three segments of the loop: before the activation upload, between
// receiving x_s and sending g_c, and after receiving g_s.
func clientPhases(total time.Duration) (pre, mid, post time.Duration) {
	pre = time.Duration(0.3 * float64(total))
	mid = time.Duration(0.5 * float64(total))
	post = total - pre - mid
	return pre, mid, post
}
