package splitsim

import (
	"testing"
	"time"

	"menos/internal/costmodel"
	"menos/internal/gpu"
	"menos/internal/memmodel"
	"menos/internal/simnet"
)

func menosCfg(n int, w memmodel.Workload) Config {
	return Config{
		Mode:       ModeMenos,
		Clients:    HomogeneousClients(n, w, costmodel.ClientGPUPerf()),
		Iterations: 8,
	}
}

func vanillaCfg(n int, w memmodel.Workload) Config {
	return Config{
		Mode:       ModeVanilla,
		Clients:    HomogeneousClients(n, w, costmodel.ClientGPUPerf()),
		Iterations: 8,
	}
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Mode: Mode(9), Clients: HomogeneousClients(1, memmodel.PaperOPTWorkload(), costmodel.ClientGPUPerf())}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := Run(Config{Mode: ModeMenos}); err == nil {
		t.Fatal("no clients accepted")
	}
	mixed := menosCfg(2, memmodel.PaperOPTWorkload())
	mixed.Clients[1].Workload = memmodel.PaperLlamaWorkload()
	if _, err := Run(mixed); err == nil {
		t.Fatal("mixed base models accepted")
	}
	noID := menosCfg(1, memmodel.PaperOPTWorkload())
	noID.Clients[0].ID = ""
	if _, err := Run(noID); err == nil {
		t.Fatal("empty client id accepted")
	}
}

func TestModeAndPolicyStrings(t *testing.T) {
	if ModeMenos.String() != "menos" || ModeVanilla.String() != "vanilla" {
		t.Fatal("mode strings")
	}
	for _, p := range []MemPolicy{PolicyOnDemand, PolicyReleaseOnWait, PolicyPreserve, PolicyPersistAll} {
		if p.String() == "" {
			t.Fatal("policy string empty")
		}
	}
	if Mode(0).String() == "" || MemPolicy(0).String() == "" {
		t.Fatal("unknown strings")
	}
}

// TestDeterminism: identical configs produce identical results.
func TestDeterminism(t *testing.T) {
	a := run(t, menosCfg(3, memmodel.PaperOPTWorkload()))
	b := run(t, menosCfg(3, memmodel.PaperOPTWorkload()))
	if a.AvgIterationTime() != b.AvgIterationTime() {
		t.Fatalf("non-deterministic: %v vs %v", a.AvgIterationTime(), b.AvgIterationTime())
	}
	if a.SimulatedTime != b.SimulatedTime {
		t.Fatalf("non-deterministic end time: %v vs %v", a.SimulatedTime, b.SimulatedTime)
	}
}

// TestMenosOPTIterationTimes reproduces Fig. 6(a)'s Menos series: ≈7 s
// at 1 client, degrading only mildly to ≈8.7 s at 6 clients.
func TestMenosOPTIterationTimes(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	one := run(t, menosCfg(1, w)).AvgIterationTime()
	six := run(t, menosCfg(6, w)).AvgIterationTime()
	if one < 5*time.Second || one > 9*time.Second {
		t.Fatalf("1 client = %v, paper ≈7 s", one)
	}
	if six < one {
		t.Fatalf("6 clients (%v) faster than 1 (%v)", six, one)
	}
	if six > 12*time.Second {
		t.Fatalf("6 clients = %v, paper ≈8.7 s", six)
	}
}

// TestVanillaOPTDegradesAtFourClients reproduces Fig. 6(a)'s vanilla
// series: fine up to 3 clients (the V100 fits 3 replicas), then
// swapping drives iteration time up steeply.
func TestVanillaOPTDegradesAtFourClients(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	three := run(t, vanillaCfg(3, w))
	six := run(t, vanillaCfg(6, w))
	if three.Aggregate.AvgSched() > time.Second {
		t.Fatalf("3 vanilla clients already queueing: %v", three.Aggregate.AvgSched())
	}
	if three.AvgIterationTime() > 9*time.Second {
		t.Fatalf("3 clients = %v, paper ≈7 s", three.AvgIterationTime())
	}
	if six.AvgIterationTime() < 12*time.Second {
		t.Fatalf("6 clients = %v, paper ≈18.2 s (swapping)", six.AvgIterationTime())
	}
}

// TestVanillaLlamaCollapsesAtTwoClients reproduces Fig. 6(b): one V100
// holds a single Llama replica, so two vanilla clients already swap
// ≈25 GB per turn (3.7 s → 63.1 s in the paper).
func TestVanillaLlamaCollapsesAtTwoClients(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	one := run(t, vanillaCfg(1, w))
	two := run(t, vanillaCfg(2, w))
	if one.AvgIterationTime() > 6*time.Second {
		t.Fatalf("1 client = %v, paper ≈3.7 s", one.AvgIterationTime())
	}
	if two.AvgIterationTime() < 25*time.Second {
		t.Fatalf("2 clients = %v, paper ≈63 s", two.AvgIterationTime())
	}
	if two.Aggregate.AvgSched() < 20*time.Second {
		t.Fatalf("2-client sched time = %v, paper ≈39.9 s", two.Aggregate.AvgSched())
	}
}

// TestMenosLlamaStaysFast reproduces Fig. 6(b)'s Menos series: 4.7 s →
// 6.0 s from 1 to 4 clients.
func TestMenosLlamaStaysFast(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	one := run(t, menosCfg(1, w)).AvgIterationTime()
	four := run(t, menosCfg(4, w)).AvgIterationTime()
	if one < 3*time.Second || one > 7*time.Second {
		t.Fatalf("1 client = %v, paper ≈4.7 s", one)
	}
	if four > 9*time.Second {
		t.Fatalf("4 clients = %v, paper ≈6.0 s", four)
	}
	if four < one {
		t.Fatalf("4 clients (%v) faster than 1 (%v)", four, one)
	}
}

// TestMenosBeatsVanillaUnderPressure is the headline Fig. 6 claim.
func TestMenosBeatsVanillaUnderPressure(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	menos := run(t, menosCfg(4, w)).AvgIterationTime()
	vanilla := run(t, vanillaCfg(4, w)).AvgIterationTime()
	if float64(vanilla) < 5*float64(menos) {
		t.Fatalf("vanilla %v not >> menos %v (paper: 154.4 s vs 6.0 s)", vanilla, menos)
	}
}

// TestMenosSchedulingTimesTiny reproduces Table 3's Menos rows:
// scheduling stays sub-second even for Llama at 4 clients.
func TestMenosSchedulingTimesTiny(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	r := run(t, menosCfg(4, w))
	if s := r.Aggregate.AvgSched(); s > 1500*time.Millisecond {
		t.Fatalf("menos sched = %v, paper ≈0.38 s", s)
	}
	// OPT never queues at all in our settings.
	rOPT := run(t, menosCfg(6, memmodel.PaperOPTWorkload()))
	if s := rOPT.Aggregate.AvgSched(); s > 200*time.Millisecond {
		t.Fatalf("menos OPT sched = %v, paper ≈0.0001 s", s)
	}
}

// TestPreservePolicyQueues reproduces Fig. 7: holding activations
// through the gradient wait starves concurrent clients; on-demand does
// not.
func TestPreservePolicyQueues(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	onDemand := menosCfg(4, w)
	preserve := menosCfg(4, w)
	preserve.Policy = PolicyPreserve
	od := run(t, onDemand)
	pr := run(t, preserve)
	if pr.Aggregate.AvgSched() < 3*od.Aggregate.AvgSched() {
		t.Fatalf("preserve sched %v not >> on-demand %v (paper: ~10 s vs 0.38 s)",
			pr.Aggregate.AvgSched(), od.Aggregate.AvgSched())
	}
}

// TestPersistAllRunsOutOfMemory: Fig. 3(a) with 4 Llama clients wants
// 4 activation sets resident forever; they fit on one V100 only
// because activations are ≈4.6 GB — but at 8 clients they cannot, and
// the simulation reports the stall as an error rather than deadlocking
// silently.
func TestPersistAllCapacity(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	cfg := menosCfg(8, w)
	cfg.Policy = PolicyPersistAll
	cfg.Iterations = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("8 persist-all Llama clients fit on one V100")
	}
}

// TestTooManyClientsPersistentOOM: Menos' own limit — per-client
// contexts eventually exhaust memory, reported as a config error.
func TestTooManyClientsPersistentOOM(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	cfg := menosCfg(20, w)
	if _, err := Run(cfg); err == nil {
		t.Fatal("20 Llama clients' persistent state fit on one V100")
	}
}

// TestMultiGPUHelps reproduces Fig. 10: 10 CPU clients crawl on one
// GPU but run close to baseline speed on four.
func TestMultiGPUHelps(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	base := Config{
		Mode:       ModeMenos,
		Clients:    HomogeneousClients(2, w, costmodel.ClientCPUPerf()),
		Iterations: 6,
	}
	twoClients := run(t, base).AvgIterationTime()

	oneGPU := base
	oneGPU.Clients = HomogeneousClients(10, w, costmodel.ClientCPUPerf())
	t10g1 := run(t, oneGPU).AvgIterationTime()

	fourGPU := oneGPU
	fourGPU.GPUs = 4
	t10g4 := run(t, fourGPU).AvgIterationTime()

	if t10g1 <= twoClients {
		t.Fatalf("10 clients on 1 GPU (%v) not slower than 2 clients (%v)", t10g1, twoClients)
	}
	if t10g4 >= t10g1 {
		t.Fatalf("4 GPUs (%v) not faster than 1 GPU (%v)", t10g4, t10g1)
	}
	// Paper: 11.2 s → 6.6 s; shape: 4 GPUs recover most of the loss.
	if float64(t10g4) > 0.8*float64(t10g1) {
		t.Fatalf("4 GPUs recover too little: %v vs %v", t10g4, t10g1)
	}
}

// TestCPUClientsOnlySlightlySlower reproduces Fig. 10's observation
// that client hardware barely matters (most compute is server-side).
func TestCPUClientsOnlySlightlySlower(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	gpuClients := run(t, menosCfg(2, w)).AvgIterationTime()
	cpuCfg := menosCfg(2, w)
	for i := range cpuCfg.Clients {
		cpuCfg.Clients[i].Platform = costmodel.ClientCPUPerf()
	}
	cpuClients := run(t, cpuCfg).AvgIterationTime()
	delta := cpuClients - gpuClients
	if delta <= 0 {
		t.Fatalf("CPU clients (%v) not slower than GPU clients (%v)", cpuClients, gpuClients)
	}
	if delta > 2*time.Second {
		t.Fatalf("CPU penalty %v, paper observed ≈0.8 s", delta)
	}
}

// TestCommunicationTimesFlat reproduces Table 1: communication is
// roughly constant in the client count and dominates when memory
// suffices.
func TestCommunicationTimesFlat(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	c1 := run(t, menosCfg(1, w)).Aggregate.AvgComm()
	c6 := run(t, menosCfg(6, w)).Aggregate.AvgComm()
	if c1 < 5*time.Second || c1 > 8*time.Second {
		t.Fatalf("comm @1 = %v, paper ≈6.4 s", c1)
	}
	ratio := float64(c6) / float64(c1)
	if ratio > 1.3 || ratio < 0.8 {
		t.Fatalf("comm not flat: %v -> %v", c1, c6)
	}
}

// TestComputationGrowsWithClients reproduces Table 2: Menos compute
// rises with client count (re-forward + release overhead) while
// vanilla stays flat.
func TestComputationGrowsWithClients(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	m1 := run(t, menosCfg(1, w)).Aggregate.AvgComp()
	m4 := run(t, menosCfg(4, w)).Aggregate.AvgComp()
	if m4 <= m1 {
		t.Fatalf("menos compute flat: %v -> %v", m1, m4)
	}
	v1 := run(t, vanillaCfg(1, w)).Aggregate.AvgComp()
	v4 := run(t, vanillaCfg(4, w)).Aggregate.AvgComp()
	spread := float64(v4) / float64(v1)
	if spread > 1.25 {
		t.Fatalf("vanilla compute not flat: %v -> %v", v1, v4)
	}
	if m1 <= v1 {
		t.Fatalf("menos compute (%v) not above vanilla (%v), paper shows re-forward cost", m1, v1)
	}
}

// TestSchedulerStatsExposed: backfilling actually happens when
// backwards and forwards mix under memory pressure.
func TestSchedulerStatsExposed(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	r := run(t, menosCfg(4, w))
	if r.SchedStats.Granted == 0 {
		t.Fatal("no grants recorded")
	}
	if r.SchedStats.Submitted < int64(4*8) {
		t.Fatalf("submitted = %d", r.SchedStats.Submitted)
	}
}

// TestPersistentMemoryComparison mirrors Fig. 5 out of the running
// system (not just the formulas): Menos' device residency beats
// vanilla's replica sum.
func TestPersistentMemoryComparison(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	menos := run(t, menosCfg(4, w))
	vanilla := run(t, vanillaCfg(4, w))
	if menos.PersistentBytes >= vanilla.PersistentBytes {
		t.Fatalf("menos persistent %d not below vanilla %d",
			menos.PersistentBytes, vanilla.PersistentBytes)
	}
	saving := 1 - float64(menos.PersistentBytes)/float64(vanilla.PersistentBytes)
	if saving < 0.6 {
		t.Fatalf("saving = %.2f, paper ≈0.72", saving)
	}
}

// TestPeakNeverExceedsCapacity: the device set must never report a
// peak above its capacity under Menos' admission control.
func TestPeakNeverExceedsCapacity(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	r := run(t, menosCfg(6, w))
	if r.PeakBytes > gpu.V100().MemoryBytes {
		t.Fatalf("peak %d exceeds V100 capacity", r.PeakBytes)
	}
}

// TestForwardRequestsNeverWait reproduces the paper's observation:
// "there is almost no waiting time for forward requests even for
// Llama... our scheduling algorithm can always select and parallelize
// them with the backward computations of other clients."
func TestForwardRequestsNeverWait(t *testing.T) {
	r := run(t, menosCfg(4, memmodel.PaperLlamaWorkload()))
	if r.Waits.Forwards == 0 || r.Waits.Backwards == 0 {
		t.Fatalf("waits not recorded: %+v", r.Waits)
	}
	if r.Waits.AvgForward() > 50*time.Millisecond+2*costmodelDecision {
		t.Fatalf("forwards wait %v on average, paper says almost none", r.Waits.AvgForward())
	}
	if r.Waits.AvgBackward() < r.Waits.AvgForward() {
		t.Fatalf("backwards (%v) wait less than forwards (%v)",
			r.Waits.AvgBackward(), r.Waits.AvgForward())
	}
}

const costmodelDecision = 50 * time.Microsecond

// TestStaggeredArrivalMenos: clients joining mid-run are served
// without disturbing earlier clients beyond normal contention.
func TestStaggeredArrivalMenos(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	cfg := menosCfg(4, w)
	for i := range cfg.Clients {
		cfg.Clients[i].StartDelay = time.Duration(i) * 20 * time.Second
	}
	r := run(t, cfg)
	// Every client completed all its iterations.
	for _, c := range r.Clients {
		if c.Breakdown.Iterations() != cfg.Iterations {
			t.Fatalf("client %s completed %d/%d iterations",
				c.ID, c.Breakdown.Iterations(), cfg.Iterations)
		}
	}
	// Staggering reduces contention: per-round time at or below the
	// synchronized-arrival run.
	sync := run(t, menosCfg(4, w))
	if r.AvgIterationTime() > sync.AvgIterationTime()+time.Second {
		t.Fatalf("staggered (%v) slower than synchronized (%v)",
			r.AvgIterationTime(), sync.AvgIterationTime())
	}
}

// TestLateJoinerVanilla: the baseline's task-level sharing admits a
// late client by swapping ("allowing new incoming clients to be
// served") — the late joiner pays swap time, the total still finishes.
func TestLateJoinerVanilla(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	cfg := vanillaCfg(2, w)
	cfg.Clients[1].StartDelay = 8 * time.Second // client 1 is mid-run
	r := run(t, cfg)
	late := r.Clients[1]
	if late.Breakdown.Iterations() != cfg.Iterations {
		t.Fatalf("late joiner completed %d iterations", late.Breakdown.Iterations())
	}
	// At least one ≈21 s swap-in amortized over the run.
	if late.Breakdown.AvgSched() < 2*time.Second {
		t.Fatalf("late joiner avoided swapping: sched = %v", late.Breakdown.AvgSched())
	}
}

// TestReleaseOnWaitBetweenPreserveAndOnDemand: Fig. 3(c) sits between
// (b) and (d) in scheduling behaviour under pressure.
func TestReleaseOnWaitClose(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	mk := func(p MemPolicy) time.Duration {
		cfg := menosCfg(4, w)
		cfg.Policy = p
		return run(t, cfg).Aggregate.AvgSched()
	}
	preserve := mk(PolicyPreserve)
	release := mk(PolicyReleaseOnWait)
	onDemand := mk(PolicyOnDemand)
	if release >= preserve {
		t.Fatalf("release-on-wait (%v) not better than preserve (%v)", release, preserve)
	}
	// (c) and (d) both release during the gradient wait; (d)'s no-grad
	// trick additionally shrinks the *forward* footprint, so (d) is at
	// least as good.
	if onDemand > release+500*time.Millisecond {
		t.Fatalf("on-demand (%v) much worse than release-on-wait (%v)", onDemand, release)
	}
}

// TestLANLinkShowsComputeBound: with communication removed (LAN), the
// round time approaches compute time — validating the breakdown
// accounting.
func TestLANLinkShowsComputeBound(t *testing.T) {
	w := memmodel.PaperLlamaWorkload()
	cfg := menosCfg(1, w)
	cfg.LinkPreset = simnet.LANPreset
	r := run(t, cfg)
	if r.Aggregate.AvgComm() > 100*time.Millisecond {
		t.Fatalf("LAN comm = %v", r.Aggregate.AvgComm())
	}
	total := r.AvgIterationTime()
	comp := r.Aggregate.AvgComp()
	if total-comp > 200*time.Millisecond {
		t.Fatalf("unaccounted time: total %v vs comp %v", total, comp)
	}
}

// TestBiggerGPUFitsMoreVanillaClients: a device with four replicas'
// worth of memory serves 4 vanilla OPT clients without swapping, where
// the V100 (3 replicas) queues.
func TestBiggerGPUFitsMoreVanillaClients(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	v100 := vanillaCfg(4, w)
	big := vanillaCfg(4, w)
	big.GPUSpec = gpu.Spec{Name: "hypothetical-48G", MemoryBytes: 48 << 30}
	rv := run(t, v100)
	rb := run(t, big)
	if rv.Aggregate.AvgSched() < time.Second {
		t.Fatalf("V100 did not queue at 4 clients: %v", rv.Aggregate.AvgSched())
	}
	if rb.Aggregate.AvgSched() > 100*time.Millisecond {
		t.Fatalf("48G device queued: %v", rb.Aggregate.AvgSched())
	}
}
