package splitsim

import (
	"fmt"
	"time"

	"menos/internal/costmodel"
	"menos/internal/gpu"
	"menos/internal/obs"
	"menos/internal/quant"
	"menos/internal/sim"
	"menos/internal/trace"
)

// vanillaWaiter is one client queued for GPU residency.
type vanillaWaiter struct {
	id          string
	signal      *sim.Signal
	victimBytes int64       // swap-out volume of the evicted task
	allocID     gpu.AllocID // reserved at eviction time
	ready       bool
}

// residency implements the paper's comparison baseline (§5.1): the
// server hosts every client's full replica if memory allows; when
// capacity is exceeded, tasks are swapped out of GPU memory at the end
// of each iteration so queued clients can be served.
//
// Memory is reserved for the waiter at eviction time (before it pays
// the swap transfer), so a racing client cannot steal the freed slot.
type residency struct {
	kernel  *sim.Kernel
	devices *gpu.DeviceSet

	// residentBytes is the on-GPU working set per client (replica +
	// states + preserved activations); swapBytes is what actually
	// moves over PCIe on eviction (model + states — activations are
	// discarded at iteration end and rebuilt).
	residentBytes map[string]int64
	swapBytes     map[string]int64

	resident map[string]gpu.AllocID
	queue    []*vanillaWaiter

	// swapOps/swapTraffic count swap-in transfers (nil-safe handles;
	// zero value means un-instrumented).
	swapOps     *obs.Counter
	swapTraffic *obs.Counter
}

// ensure makes the client resident, returning the scheduling delay
// (queue wait + swap transfer time).
func (r *residency) ensure(p *sim.Proc, id string, cost *costmodel.Model) time.Duration {
	if _, ok := r.resident[id]; ok {
		return 0
	}
	start := p.Now()
	// FIFO fairness: only claim memory directly when nobody is queued.
	if len(r.queue) == 0 {
		if allocID, err := r.devices.Alloc("replica:"+id, r.residentBytes[id]); err == nil {
			// Free capacity: the initial load is not charged (the
			// paper's steady-state averages exclude it).
			r.resident[id] = allocID
			return p.Now() - start
		}
	}
	w := &vanillaWaiter{id: id, signal: r.kernel.NewSignal()}
	r.queue = append(r.queue, w)
	for !w.ready {
		w.signal.Wait(p, "vanilla residency "+id)
	}
	// The slot was reserved at eviction; pay the PCIe transfer for our
	// own replica now. The victim's write-back overlaps with queueing
	// (asynchronous DMA), so it does not appear on the critical path.
	p.Sleep(cost.SwapTime(r.swapBytes[id]))
	r.swapOps.Inc()
	r.swapTraffic.Add(r.swapBytes[id])
	r.resident[id] = w.allocID
	return p.Now() - start
}

// iterDone is called at the end of each client iteration: if clients
// are queued, the finishing client is swapped out and the head waiter
// whose replica fits gets a reservation.
func (r *residency) iterDone(id string) {
	if len(r.queue) == 0 {
		return
	}
	allocID, ok := r.resident[id]
	if !ok {
		return
	}
	delete(r.resident, id)
	_ = r.devices.Free(allocID)
	r.admit(id)
}

// admit reserves freed memory for as many queued waiters as fit,
// charging the first one the victim's swap-out.
func (r *residency) admit(victimID string) {
	victimBytes := r.swapBytes[victimID]
	for len(r.queue) > 0 {
		w := r.queue[0]
		allocID, err := r.devices.Alloc("replica:"+w.id, r.residentBytes[w.id])
		if err != nil {
			return // head does not fit yet; keep FIFO order
		}
		r.queue = r.queue[1:]
		w.allocID = allocID
		w.victimBytes = victimBytes
		victimBytes = 0 // only the first admitted waiter pays the swap-out
		w.ready = true
		w.signal.Fire()
	}
}

// runVanilla simulates the vanilla split-learning baseline.
func runVanilla(cfg Config) (*Result, error) {
	kernel := sim.New()
	devices, err := gpu.NewDeviceSet(cfg.GPUSpec, cfg.GPUs)
	if err != nil {
		return nil, err
	}
	link := cfg.LinkPreset(kernel)

	devices.Instrument(cfg.Metrics)
	res := &residency{
		kernel:        kernel,
		devices:       devices,
		residentBytes: make(map[string]int64),
		swapBytes:     make(map[string]int64),
		resident:      make(map[string]gpu.AllocID),
		swapOps:       cfg.Metrics.Counter(obs.MetricSwapOps, "Task swap-in transfers (vanilla baseline)."),
		swapTraffic:   cfg.Metrics.Counter(obs.MetricSwapBytes, "Bytes moved over PCIe by task swap-ins (vanilla baseline)."),
	}
	var persistent int64
	for _, cl := range cfg.Clients {
		w := cl.Workload
		states := w.AdapterBytes() + w.GradBytes() + w.OptimizerBytes()
		res.residentBytes[cl.ID] = w.ServerBaseBytes() + states + w.ActivationBytes()
		res.swapBytes[cl.ID] = w.ServerBaseBytes() + states
		persistent += w.ServerBaseBytes() + states
	}

	// Reject configurations where one replica cannot fit at all.
	for _, cl := range cfg.Clients {
		if res.residentBytes[cl.ID] > devices.Capacity() {
			return nil, fmt.Errorf("%w: replica for %q needs %d bytes, capacity %d",
				ErrConfig, cl.ID, res.residentBytes[cl.ID], devices.Capacity())
		}
	}

	results := make([]ClientResult, len(cfg.Clients))
	for i := range cfg.Clients {
		results[i] = ClientResult{ID: cfg.Clients[i].ID, Breakdown: &trace.Breakdown{}}
	}

	for i, cl := range cfg.Clients {
		cl := cl
		bd := results[i].Breakdown
		cost := costmodel.New(cfg.ServerPerf, cl.Workload)
		clientTotal := costmodel.ClientComputeTime(cl.Platform, cl.Workload)
		pre, mid, post := clientPhases(clientTotal)
		// The wire codec shrinks split-boundary transfers exactly as in
		// the Menos loop, so codec sweeps compare modes fairly.
		transfer := cl.Workload.TransferBytes()
		if cfg.WireCodec != quant.CodecFP32 {
			transfer = int64(float64(transfer) * cfg.WireCodec.WireRatio())
		}

		kernel.Spawn("client:"+cl.ID, func(p *sim.Proc) {
			// Spans mirror the Breakdown accumulators exactly, as in
			// the Menos loop, and carry the same deterministic
			// per-iteration trace IDs.
			var tid uint64
			var comm, comp, schedT time.Duration
			sleepComp := func(name string, d time.Duration) {
				start := p.Now()
				p.Sleep(d)
				comp += d
				cfg.Tracer.RecordT(cl.ID, name, "compute", tid, start, d)
			}
			xfer := func(name string) {
				start := p.Now()
				d := link.Transfer(p, transfer)
				comm += d
				cfg.Tracer.RecordT(cl.ID, name, "comm", tid, start, d)
			}
			if cl.StartDelay > 0 {
				p.Sleep(cl.StartDelay)
			}
			for iter := 0; iter < cfg.Iterations; iter++ {
				tid = obs.IterTraceID(cl.ID, iter)
				comm, comp, schedT = 0, 0, 0

				sleepComp("client-pre", pre)
				xfer("upload:x_c")

				// The task must be on the GPU for the whole iteration.
				resStart := p.Now()
				d := res.ensure(p, cl.ID, cost)
				schedT += d
				cfg.Tracer.RecordT(cl.ID, "residency-wait", "sched", tid, resStart, d)

				sleepComp("forward", cost.ForwardTime(cl.Workload))

				xfer("download:x_s")
				sleepComp("client-mid", mid)
				xfer("upload:g_c")

				sleepComp("backward", cost.BackwardTime(cl.Workload))
				sleepComp("optimizer", costmodel.OptimizerStepTime)

				xfer("download:g_s")
				sleepComp("client-post", post)

				bd.Add(comm, comp, schedT)
				res.iterDone(cl.ID)
			}
		})
	}

	if err := kernel.Run(); err != nil {
		return nil, fmt.Errorf("vanilla simulation: %w", err)
	}

	agg := &trace.Breakdown{}
	for _, r := range results {
		agg.Merge(r.Breakdown)
	}
	return &Result{
		Mode:            ModeVanilla,
		Clients:         results,
		Aggregate:       agg,
		PersistentBytes: persistent,
		PeakBytes:       devices.Peak(),
		SimulatedTime:   kernel.Now(),
	}, nil
}
