package splitsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"menos/internal/costmodel"
	"menos/internal/memmodel"
	"menos/internal/obs"
	"menos/internal/quant"
)

// TestWireCodecScalesCommTime pins the codec transfer model: per-link
// bytes shrink by WireRatio, so communication time shrinks by (nearly)
// the same factor, latency floor aside.
func TestWireCodecScalesCommTime(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	base := run(t, menosCfg(1, w))
	commFP32, _, _ := base.Aggregate.Totals()

	for _, tc := range []struct {
		codec quant.Codec
		ratio float64
	}{
		{quant.CodecFP16, 0.5},
		{quant.CodecInt8, 0.25},
	} {
		cfg := menosCfg(1, w)
		cfg.WireCodec = tc.codec
		r := run(t, cfg)
		comm, _, _ := r.Aggregate.Totals()
		got := float64(comm) / float64(commFP32)
		// The one-way latency term does not compress, so the observed
		// ratio sits slightly above the byte ratio.
		if got < tc.ratio-0.02 || got > tc.ratio+0.1 {
			t.Fatalf("%v comm ratio = %.3f, want ≈%.2f", tc.codec, got, tc.ratio)
		}
		if r.SimulatedTime >= base.SimulatedTime {
			t.Fatalf("%v run not faster: %v vs %v", tc.codec, r.SimulatedTime, base.SimulatedTime)
		}
	}
}

// TestWireCodecCountsBytes checks the simulated wire counters mirror
// the real plane's savings arithmetic: compressed/raw == WireRatio.
func TestWireCodecCountsBytes(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	cfg := menosCfg(2, w)
	cfg.WireCodec = quant.CodecInt8
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	run(t, cfg)

	compressed := reg.Counter(obs.MetricWireCompressedBytes).Value()
	raw := reg.Counter(obs.MetricWireRawBytes).Value()
	if compressed == 0 || raw == 0 {
		t.Fatalf("wire counters empty: compressed=%d raw=%d", compressed, raw)
	}
	if got := float64(compressed) / float64(raw); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("compressed/raw = %.4f, want 0.25", got)
	}

	// fp32 runs register nothing.
	reg2 := obs.NewRegistry()
	cfg2 := menosCfg(1, w)
	cfg2.Metrics = reg2
	run(t, cfg2)
	if v := reg2.Counter(obs.MetricWireCompressedBytes).Value(); v != 0 {
		t.Fatalf("fp32 run counted %d compressed bytes", v)
	}
}

// TestOverlapHidesFasterLeg is the acceptance pin for the pipelined
// schedule: with overlap on, per-iteration wall time collapses from
// comm+comp+sched to ≈ max(wire leg, client leg) —
// costmodel.OverlapStepTime — while the Breakdown keeps recording the
// serial resource totals.
func TestOverlapHidesFasterLeg(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	seq := run(t, menosCfg(1, w))
	cfg := menosCfg(1, w)
	cfg.Overlap = true
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	ov := run(t, cfg)

	// Resource totals are schedule-independent.
	_, seqComp, _ := seq.Aggregate.Totals()
	_, ovComp, _ := ov.Aggregate.Totals()
	if seqComp != ovComp {
		t.Fatalf("overlap changed compute total: %v vs %v", ovComp, seqComp)
	}

	iters := time.Duration(cfg.Iterations)
	clientLeg := costmodel.ClientComputeTime(cfg.Clients[0].Platform, w)
	wireLeg := (seq.SimulatedTime - iters*clientLeg) / iters
	want := costmodel.OverlapStepTime(wireLeg, clientLeg)
	got := ov.SimulatedTime / iters
	// Jittered transfers keep this from being exact; 5% is far tighter
	// than the serial/overlapped gap the assertion distinguishes.
	if ratio := float64(got) / float64(want); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("overlapped iteration = %v, want ≈max(wire=%v, client=%v) = %v", got, wireLeg, clientLeg, want)
	}
	if ov.SimulatedTime >= seq.SimulatedTime {
		t.Fatalf("overlap not faster: %v vs %v", ov.SimulatedTime, seq.SimulatedTime)
	}
	// The hidden time accounts for (almost exactly) the difference.
	saved := seq.SimulatedTime - ov.SimulatedTime
	if ov.OverlapHidden < saved*9/10 || ov.OverlapHidden > saved*11/10 {
		t.Fatalf("OverlapHidden = %v, saved wall time = %v", ov.OverlapHidden, saved)
	}
	h := reg.Histogram(obs.MetricOverlapHiddenSeconds, obs.DurationBuckets())
	if h.Count() != int64(cfg.Iterations) {
		t.Fatalf("hidden histogram count = %d, want %d", h.Count(), cfg.Iterations)
	}
	if seq.OverlapHidden != 0 {
		t.Fatalf("sequential run reported hidden time %v", seq.OverlapHidden)
	}
}

// TestOverlapWithCompression stacks both knobs: int8 shrinks the wire
// leg, overlap hides the smaller of the legs, and the combined run is
// the fastest of the four corners.
func TestOverlapWithCompression(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	times := map[string]time.Duration{}
	for _, tc := range []struct {
		name    string
		codec   quant.Codec
		overlap bool
	}{
		{"plain", quant.CodecFP32, false},
		{"int8", quant.CodecInt8, false},
		{"overlap", quant.CodecFP32, true},
		{"int8+overlap", quant.CodecInt8, true},
	} {
		cfg := menosCfg(2, w)
		cfg.WireCodec = tc.codec
		cfg.Overlap = tc.overlap
		times[tc.name] = run(t, cfg).SimulatedTime
	}
	for _, name := range []string{"int8", "overlap"} {
		if times[name] >= times["plain"] {
			t.Fatalf("%s (%v) not faster than plain (%v)", name, times[name], times["plain"])
		}
		if times["int8+overlap"] >= times[name] {
			t.Fatalf("combined (%v) not faster than %s (%v)", times["int8+overlap"], name, times[name])
		}
	}
}

// TestOverlapConfigGate pins the validated envelope.
func TestOverlapConfigGate(t *testing.T) {
	w := memmodel.PaperOPTWorkload()
	bad := []func(*Config){
		func(c *Config) { c.Mode = ModeVanilla },
		func(c *Config) { c.Policy = PolicyPreserve },
		func(c *Config) { c.WireCodec = quant.Codec(9); c.Overlap = false },
	}
	for i, mutate := range bad {
		cfg := menosCfg(1, w)
		cfg.Overlap = true
		mutate(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d: got %v, want ErrConfig", i, err)
		}
	}
}
