package tensor

import "testing"

// Kernel benchmarks at the 512-cube shape used by the compute-plane
// acceptance numbers in docs/PERFORMANCE.md. Each variant is measured
// at the pool's configured parallelism ("pool") and, for comparison,
// pinned to one worker ("serial"), so the parallel speedup is visible
// in one -bench run.

const benchDim = 512

func benchTensors(b *testing.B) (dst, x, y *Tensor) {
	b.Helper()
	rng := NewRNG(1)
	dst = New(benchDim, benchDim)
	x = NewNormal(rng, 1, benchDim, benchDim)
	y = NewNormal(rng, 1, benchDim, benchDim)
	return dst, x, y
}

// benchPoolSerial runs op once per iteration, first at the configured
// parallelism, then pinned to a single worker.
func benchPoolSerial(b *testing.B, op func() error) {
	run := func(b *testing.B) {
		b.SetBytes(3 * benchDim * benchDim * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pool", run)
	b.Run("serial", func(b *testing.B) {
		prev := Parallelism()
		SetParallelism(1)
		defer SetParallelism(prev)
		run(b)
	})
}

func BenchmarkMatMul(b *testing.B) {
	dst, x, y := benchTensors(b)
	benchPoolSerial(b, func() error { return MatMul(dst, x, y) })
}

func BenchmarkMatMulAccum(b *testing.B) {
	dst, x, y := benchTensors(b)
	benchPoolSerial(b, func() error { return MatMulAccum(dst, x, y) })
}

func BenchmarkMatMulT(b *testing.B) {
	dst, x, y := benchTensors(b)
	benchPoolSerial(b, func() error { return MatMulT(dst, x, y) })
}

func BenchmarkMatMulTAccum(b *testing.B) {
	dst, x, y := benchTensors(b)
	benchPoolSerial(b, func() error { return MatMulTAccum(dst, x, y) })
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := NewRNG(2)
	x := NewNormal(rng, 1, benchDim, benchDim)
	dst := New(benchDim, benchDim)
	b.SetBytes(2 * benchDim * benchDim * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SoftmaxRows(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}
