package tensor

import (
	"math"
	"testing"
)

// Reference kernels: the naive loops the tiled implementations must
// reproduce bit for bit. Each accumulates in ascending p order per
// output element, exactly like the production kernels, so comparisons
// below demand exact equality rather than a tolerance.

func refMatMulAccum(dst, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.data[i*k+p]
			for j := 0; j < n; j++ {
				dst.data[i*n+j] += av * b.data[p*n+j]
			}
		}
	}
}

func refMatMulT(dst, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[j*k+p]
			}
			dst.data[i*n+j] = s
		}
	}
}

func refMatMulTAccum(dst, a, b *Tensor) {
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.data[p*m+i]
			for j := 0; j < n; j++ {
				dst.data[i*n+j] += av * b.data[p*n+j]
			}
		}
	}
}

// expectBitIdentical fails unless got and want agree in every bit.
func expectBitIdentical(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	if len(got.data) != len(want.data) {
		t.Fatalf("%s: length %d vs %d", label, len(got.data), len(want.data))
	}
	for i := range got.data {
		if math.Float32bits(got.data[i]) != math.Float32bits(want.data[i]) {
			t.Fatalf("%s: element %d differs: %g (%#x) vs %g (%#x)",
				label, i, got.data[i], math.Float32bits(got.data[i]),
				want.data[i], math.Float32bits(want.data[i]))
		}
	}
}

// boundaryShapes straddle the 4-row register-tile boundary (the classic
// off-by-one surface for blocked kernels) and use odd inner/outer dims.
var boundaryShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{2, 3, 5},
	{3, 7, 9},
	{4, 4, 4},
	{5, 13, 3},
	{63, 31, 17},
	{64, 33, 19},
	{65, 29, 21},
	{66, 5, 1},
	{7, 64, 65},
}

func TestMatMulVariantsMatchReferenceAtTileBoundaries(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, par := range []int{1, 4} {
		SetParallelism(par)
		for _, s := range boundaryShapes {
			rng := NewRNG(uint64(s.m*1000000 + s.k*1000 + s.n))
			a := NewNormal(rng, 1, s.m, s.k)
			b2 := NewNormal(rng, 1, s.k, s.n)
			bt := NewNormal(rng, 1, s.n, s.k)
			at := NewNormal(rng, 1, s.k, s.m)
			seed := NewNormal(rng, 1, s.m, s.n)

			got := New(s.m, s.n)
			want := New(s.m, s.n)
			if err := MatMul(got, a, b2); err != nil {
				t.Fatal(err)
			}
			refMatMulAccum(want, a, b2)
			expectBitIdentical(t, got, want, "MatMul")

			got = seed.Clone()
			want = seed.Clone()
			if err := MatMulAccum(got, a, b2); err != nil {
				t.Fatal(err)
			}
			refMatMulAccum(want, a, b2)
			expectBitIdentical(t, got, want, "MatMulAccum")

			got = New(s.m, s.n)
			want = New(s.m, s.n)
			if err := MatMulT(got, a, bt); err != nil {
				t.Fatal(err)
			}
			refMatMulT(want, a, bt)
			expectBitIdentical(t, got, want, "MatMulT")

			got = seed.Clone()
			want = seed.Clone()
			if err := MatMulTAccum(got, at, b2); err != nil {
				t.Fatal(err)
			}
			refMatMulTAccum(want, at, b2)
			expectBitIdentical(t, got, want, "MatMulTAccum")
		}
	}
}

// TestKernelsBitIdenticalAcrossParallelism pins constraint #1 of the
// worker pool: every kernel must produce the same bits at any
// parallelism setting.
func TestKernelsBitIdenticalAcrossParallelism(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)

	m, k, n := 67, 45, 53
	rng := NewRNG(99)
	a := NewNormal(rng, 1, m, k)
	b2 := NewNormal(rng, 1, k, n)
	bt := NewNormal(rng, 1, n, k)
	at := NewNormal(rng, 1, k, m)
	// Softmax and Add operands large enough to clear their fan-out
	// grains (softmaxGrainElems, elemwiseGrain) so the pooled path
	// actually runs at parallelism > 1.
	sx := NewNormal(rng, 1, 1200, 45)
	x := NewNormal(rng, 1, 300, 300)
	y := NewNormal(rng, 1, 300, 300)

	type result struct{ mm, mma, mmt, mmta, sm, add *Tensor }
	run := func(par int) result {
		SetParallelism(par)
		r := result{
			mm: New(m, n), mma: New(m, n), mmt: New(m, n),
			mmta: New(m, n), sm: New(1200, 45), add: New(300, 300),
		}
		if err := MatMul(r.mm, a, b2); err != nil {
			t.Fatal(err)
		}
		if err := MatMulAccum(r.mma, a, b2); err != nil {
			t.Fatal(err)
		}
		if err := MatMulT(r.mmt, a, bt); err != nil {
			t.Fatal(err)
		}
		if err := MatMulTAccum(r.mmta, at, b2); err != nil {
			t.Fatal(err)
		}
		if err := SoftmaxRows(r.sm, sx); err != nil {
			t.Fatal(err)
		}
		if err := Add(r.add, x, y); err != nil {
			t.Fatal(err)
		}
		return r
	}

	serial := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		expectBitIdentical(t, got.mm, serial.mm, "MatMul")
		expectBitIdentical(t, got.mma, serial.mma, "MatMulAccum")
		expectBitIdentical(t, got.mmt, serial.mmt, "MatMulT")
		expectBitIdentical(t, got.mmta, serial.mmta, "MatMulTAccum")
		expectBitIdentical(t, got.sm, serial.sm, "SoftmaxRows")
		expectBitIdentical(t, got.add, serial.add, "Add")
	}
}
