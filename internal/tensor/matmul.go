package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// matmulParallelThreshold is the minimum number of output rows before
// MatMul fans work out across goroutines. Small matrices are cheaper to
// compute serially than to coordinate.
const matmulParallelThreshold = 64

// MatMul computes dst = a @ b for rank-2 tensors: a is (m,k), b is
// (k,n), dst is (m,n). dst must not alias a or b.
//
// The inner loop is written in the ikj order so the innermost traversal
// is over contiguous rows of b and dst, which is dramatically faster
// than the naive ijk order on row-major data.
func MatMul(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmul requires rank-2 operands, got %v @ %v -> %v",
			ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	dst.Zero()
	matmulAccum(dst.data, a.data, b.data, m, k, n)
	return nil
}

// MatMulAccum computes dst += a @ b with the same shape rules as
// MatMul. It does not zero dst first.
func MatMulAccum(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmul requires rank-2 operands, got %v @ %v -> %v",
			ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	matmulAccum(dst.data, a.data, b.data, m, k, n)
	return nil
}

func matmulAccum(dst, a, b []float32, m, k, n int) {
	if m >= matmulParallelThreshold {
		matmulAccumParallel(dst, a, b, m, k, n)
		return
	}
	matmulAccumRange(dst, a, b, 0, m, k, n)
}

func matmulAccumParallel(dst, a, b []float32, m, k, n int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulAccumRange(dst, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

func matmulAccumRange(dst, a, b []float32, rowLo, rowHi, k, n int) {
	for i := rowLo; i < rowHi; i++ {
		ai := a[i*k : (i+1)*k]
		di := dst[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT computes dst = a @ bᵀ: a is (m,k), b is (n,k), dst is (m,n).
// This avoids materializing the transpose, which the backward pass of a
// linear layer would otherwise do on every step.
func MatMulT(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmulT requires rank-2 operands", ErrShape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulT %v @ %vᵀ -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		di := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += ai[p] * bj[p]
			}
			di[j] = s
		}
	}
	return nil
}

// MatMulTAccum computes dst += aᵀ @ b: a is (k,m), b is (k,n), dst is
// (m,n). This is the weight-gradient kernel of a linear layer
// (dW += xᵀ @ dy) without materializing xᵀ.
func MatMulTAccum(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmulTAccum requires rank-2 operands", ErrShape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTAccum %vᵀ @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			di := dst.data[i*n : (i+1)*n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
	return nil
}
