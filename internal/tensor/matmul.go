package tensor

import "fmt"

// Blocking parameters for the tiled kernels. All four variants
// partition work by output row, so any parallel split produces the
// same per-element accumulation order as the serial kernel and the
// results are bit-identical at every parallelism setting.
// matmulParallelFlops is the approximate multiply-add count below
// which fanning a kernel out costs more than it saves; it sets the
// ParallelFor grain so tiny matmuls stay on the calling goroutine.
const matmulParallelFlops = 1 << 16

// matmulGrain converts a per-row cost into a ParallelFor grain: the
// number of output rows that amount to matmulParallelFlops of work.
func matmulGrain(flopsPerRow int) int {
	if flopsPerRow <= 0 {
		return 1 << 30
	}
	g := matmulParallelFlops / flopsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul computes dst = a @ b for rank-2 tensors: a is (m,k), b is
// (k,n), dst is (m,n). dst must not alias a or b.
//
// The inner loop is written in the ikj order so the innermost traversal
// is over contiguous rows of b and dst, which is dramatically faster
// than the naive ijk order on row-major data.
func MatMul(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmul requires rank-2 operands, got %v @ %v -> %v",
			ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	dst.Zero()
	matmulAccum(dst.data, a.data, b.data, m, k, n)
	return nil
}

// MatMulAccum computes dst += a @ b with the same shape rules as
// MatMul. It does not zero dst first.
func MatMulAccum(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmul requires rank-2 operands, got %v @ %v -> %v",
			ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	matmulAccum(dst.data, a.data, b.data, m, k, n)
	return nil
}

func matmulAccum(dst, a, b []float32, m, k, n int) {
	g := matmulGrain(k * n)
	if serialFor(m, g) {
		matmulAccumRange(dst, a, b, 0, m, k, n)
		return
	}
	ParallelFor(m, g, func(lo, hi int) {
		matmulAccumRange(dst, a, b, lo, hi, k, n)
	})
}

// matmulAccumRange accumulates output rows [rowLo, rowHi) in the ikj
// order, register-tiled four output rows at a time: each streamed row
// of b feeds four accumulating dst rows, cutting b traffic 4x while
// the four hot dst rows stay cache-resident. Per (i, j) the reduction
// still runs in ascending p order, so results are bit-identical to
// the one-row loop.
func matmulAccumRange(dst, a, b []float32, rowLo, rowHi, k, n int) {
	i := rowLo
	for ; i+4 <= rowHi; i += 4 {
		a0 := a[(i+0)*k:][:k]
		a1 := a[(i+1)*k:][:k]
		a2 := a[(i+2)*k:][:k]
		a3 := a[(i+3)*k:][:k]
		d0 := dst[(i+0)*n:][:n]
		d1 := dst[(i+1)*n:][:n]
		d2 := dst[(i+2)*n:][:n]
		d3 := dst[(i+3)*n:][:n]
		for p := 0; p < k; p++ {
			av0 := a0[p]
			av1 := a1[p]
			av2 := a2[p]
			av3 := a3[p]
			bp := b[p*n:][:n]
			for j, bv := range bp {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	for ; i < rowHi; i++ {
		ai := a[i*k:][:k]
		di := dst[i*n:][:n]
		for p := 0; p < k; p++ {
			av := ai[p]
			bp := b[p*n:][:n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT computes dst = a @ bᵀ: a is (m,k), b is (n,k), dst is (m,n).
// This avoids materializing the transpose, which the backward pass of a
// linear layer would otherwise do on every step.
func MatMulT(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmulT requires rank-2 operands", ErrShape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulT %v @ %vᵀ -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	g := matmulGrain(k * n)
	if serialFor(m, g) {
		matmulTRange(dst.data, a.data, b.data, 0, m, k, n)
		return nil
	}
	ParallelFor(m, g, func(lo, hi int) {
		matmulTRange(dst.data, a.data, b.data, lo, hi, k, n)
	})
	return nil
}

// matmulTRange computes output rows [rowLo, rowHi) of dst = a @ bᵀ.
// Rows are register-tiled four at a time so each row of b is loaded
// once per quad instead of once per output element; each of the four
// dot products accumulates in ascending p order, exactly as the
// one-row loop does.
func matmulTRange(dst, a, b []float32, rowLo, rowHi, k, n int) {
	i := rowLo
	for ; i+4 <= rowHi; i += 4 {
		a0 := a[(i+0)*k:][:k]
		a1 := a[(i+1)*k:][:k]
		a2 := a[(i+2)*k:][:k]
		a3 := a[(i+3)*k:][:k]
		d0 := dst[(i+0)*n:][:n]
		d1 := dst[(i+1)*n:][:n]
		d2 := dst[(i+2)*n:][:n]
		d3 := dst[(i+3)*n:][:n]
		for j := 0; j < n; j++ {
			bj := b[j*k:][:k]
			var s0, s1, s2, s3 float32
			for p := 0; p < k; p++ {
				bv := bj[p]
				s0 += a0[p] * bv
				s1 += a1[p] * bv
				s2 += a2[p] * bv
				s3 += a3[p] * bv
			}
			d0[j] = s0
			d1[j] = s1
			d2[j] = s2
			d3[j] = s3
		}
	}
	for ; i < rowHi; i++ {
		ai := a[i*k:][:k]
		di := dst[i*n:][:n]
		for j := 0; j < n; j++ {
			bj := b[j*k:][:k]
			var s float32
			for p := 0; p < k; p++ {
				s += ai[p] * bj[p]
			}
			di[j] = s
		}
	}
}

// MatMulTAccum computes dst += aᵀ @ b: a is (k,m), b is (k,n), dst is
// (m,n). This is the weight-gradient kernel of a linear layer
// (dW += xᵀ @ dy) without materializing xᵀ.
func MatMulTAccum(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmulTAccum requires rank-2 operands", ErrShape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTAccum %vᵀ @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	g := matmulGrain(k * n)
	if serialFor(m, g) {
		matmulTAccumRange(dst.data, a.data, b.data, 0, m, k, m, n)
		return nil
	}
	ParallelFor(m, g, func(lo, hi int) {
		matmulTAccumRange(dst.data, a.data, b.data, lo, hi, k, m, n)
	})
	return nil
}

// matmulTAccumRange accumulates output rows [rowLo, rowHi) of
// dst += aᵀ @ b. The seed kernel iterated p outermost and touched all
// m output rows per step; here the loop is inverted so each worker
// owns a row range (required for a race-free parallel split) and
// register-tiled four output rows at a time: the four a values live
// on one cache line of row p and the streamed row bp feeds four
// accumulating dst rows. Per (i, j) the p order is still ascending,
// matching the seed kernel's accumulation order bit for bit.
func matmulTAccumRange(dst, a, b []float32, rowLo, rowHi, k, m, n int) {
	i := rowLo
	for ; i+4 <= rowHi; i += 4 {
		d0 := dst[(i+0)*n:][:n]
		d1 := dst[(i+1)*n:][:n]
		d2 := dst[(i+2)*n:][:n]
		d3 := dst[(i+3)*n:][:n]
		for p := 0; p < k; p++ {
			ap := a[p*m:][:m]
			av0 := ap[i]
			av1 := ap[i+1]
			av2 := ap[i+2]
			av3 := ap[i+3]
			bp := b[p*n:][:n]
			for j, bv := range bp {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	for ; i < rowHi; i++ {
		di := dst[i*n:][:n]
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			bp := b[p*n:][:n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}
