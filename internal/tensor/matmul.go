package tensor

import "fmt"

// Blocking parameters for the tiled kernels. All four variants
// partition work by output row, so any parallel split produces the
// same per-element accumulation order as the serial kernel and the
// results are bit-identical at every parallelism setting.
// matmulParallelFlops is the approximate multiply-add count below
// which fanning a kernel out costs more than it saves; it sets the
// ParallelFor grain so tiny matmuls stay on the calling goroutine.
const matmulParallelFlops = 1 << 16

// matmulGrain converts a per-row cost into a ParallelFor grain: the
// number of output rows that amount to matmulParallelFlops of work.
func matmulGrain(flopsPerRow int) int {
	if flopsPerRow <= 0 {
		return 1 << 30
	}
	g := matmulParallelFlops / flopsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul computes dst = a @ b for rank-2 tensors: a is (m,k), b is
// (k,n), dst is (m,n). dst must not alias a or b.
//
// The inner loop is written in the ikj order so the innermost traversal
// is over contiguous rows of b and dst, which is dramatically faster
// than the naive ijk order on row-major data.
func MatMul(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmul requires rank-2 operands, got %v @ %v -> %v",
			ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	dst.Zero()
	matmulAccum(dst.data, a.data, b.data, m, k, n)
	return nil
}

// MatMulAccum computes dst += a @ b with the same shape rules as
// MatMul. It does not zero dst first.
func MatMulAccum(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmul requires rank-2 operands, got %v @ %v -> %v",
			ErrShape, a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmul %v @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	matmulAccum(dst.data, a.data, b.data, m, k, n)
	return nil
}

func matmulAccum(dst, a, b []float32, m, k, n int) {
	g := matmulGrain(k * n)
	if serialFor(m, g) {
		matmulAccumRange(dst, a, b, 0, m, k, n)
		return
	}
	ParallelFor(m, g, func(lo, hi int) {
		matmulAccumRange(dst, a, b, lo, hi, k, n)
	})
}

// matmulAccumRange accumulates output rows [rowLo, rowHi) in the ikj
// order, register-tiled four output rows at a time and blocked four
// wide over the reduction index: each pass streams four rows of b
// against four rows of dst, so every dst element is loaded and stored
// once per four multiply-adds instead of once per one — the dominant
// memory traffic at SIMD-width granularity.
//
// Bit-identity discipline: per (i, j) the reduction must run in
// strictly ascending p order with a single accumulator, and each
// accumulation must stay its own `v += a*b` statement — a combined
// `v += a0*b0 + a1*b1` expression re-associates the float adds and
// changes the bits. The k-block below only reorders *memory* access,
// never the per-element add sequence, so results remain bit-identical
// to the unblocked loop at every parallelism setting.
func matmulAccumRange(dst, a, b []float32, rowLo, rowHi, k, n int) {
	i := rowLo
	for ; i+4 <= rowHi; i += 4 {
		a0 := a[(i+0)*k:][:k]
		a1 := a[(i+1)*k:][:k]
		a2 := a[(i+2)*k:][:k]
		a3 := a[(i+3)*k:][:k]
		d0 := dst[(i+0)*n:][:n]
		d1 := dst[(i+1)*n:][:n]
		d2 := dst[(i+2)*n:][:n]
		d3 := dst[(i+3)*n:][:n]
		p := 0
		for ; p+4 <= k; p += 4 {
			av00, av01, av02, av03 := a0[p], a0[p+1], a0[p+2], a0[p+3]
			av10, av11, av12, av13 := a1[p], a1[p+1], a1[p+2], a1[p+3]
			av20, av21, av22, av23 := a2[p], a2[p+1], a2[p+2], a2[p+3]
			av30, av31, av32, av33 := a3[p], a3[p+1], a3[p+2], a3[p+3]
			b0 := b[(p+0)*n:][:n]
			b1 := b[(p+1)*n:][:n]
			b2 := b[(p+2)*n:][:n]
			b3 := b[(p+3)*n:][:n]
			for j, bv0 := range b0 {
				bv1 := b1[j]
				bv2 := b2[j]
				bv3 := b3[j]
				v0 := d0[j]
				v0 += av00 * bv0
				v0 += av01 * bv1
				v0 += av02 * bv2
				v0 += av03 * bv3
				d0[j] = v0
				v1 := d1[j]
				v1 += av10 * bv0
				v1 += av11 * bv1
				v1 += av12 * bv2
				v1 += av13 * bv3
				d1[j] = v1
				v2 := d2[j]
				v2 += av20 * bv0
				v2 += av21 * bv1
				v2 += av22 * bv2
				v2 += av23 * bv3
				d2[j] = v2
				v3 := d3[j]
				v3 += av30 * bv0
				v3 += av31 * bv1
				v3 += av32 * bv2
				v3 += av33 * bv3
				d3[j] = v3
			}
		}
		for ; p < k; p++ {
			av0 := a0[p]
			av1 := a1[p]
			av2 := a2[p]
			av3 := a3[p]
			bp := b[p*n:][:n]
			for j, bv := range bp {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	for ; i < rowHi; i++ {
		ai := a[i*k:][:k]
		di := dst[i*n:][:n]
		p := 0
		for ; p+4 <= k; p += 4 {
			av0, av1, av2, av3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
			b0 := b[(p+0)*n:][:n]
			b1 := b[(p+1)*n:][:n]
			b2 := b[(p+2)*n:][:n]
			b3 := b[(p+3)*n:][:n]
			for j, bv0 := range b0 {
				v := di[j]
				v += av0 * bv0
				v += av1 * b1[j]
				v += av2 * b2[j]
				v += av3 * b3[j]
				di[j] = v
			}
		}
		for ; p < k; p++ {
			av := ai[p]
			bp := b[p*n:][:n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}

// MatMulT computes dst = a @ bᵀ: a is (m,k), b is (n,k), dst is (m,n).
// This avoids materializing the transpose, which the backward pass of a
// linear layer would otherwise do on every step.
func MatMulT(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmulT requires rank-2 operands", ErrShape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulT %v @ %vᵀ -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	g := matmulGrain(k * n)
	if serialFor(m, g) {
		matmulTRange(dst.data, a.data, b.data, 0, m, k, n)
		return nil
	}
	ParallelFor(m, g, func(lo, hi int) {
		matmulTRange(dst.data, a.data, b.data, lo, hi, k, n)
	})
	return nil
}

// matmulTRange computes output rows [rowLo, rowHi) of dst = a @ bᵀ.
// Rows are register-tiled four at a time so each row of b is loaded
// once per quad instead of once per output element, and the dot
// products are blocked four wide over k to amortize loop overhead and
// keep four loads in flight per accumulator. Each dot product still
// accumulates through a single variable in ascending p order — one
// `s += a*b` statement per step, never a combined expression — so the
// bits match the one-row, one-step loop exactly.
func matmulTRange(dst, a, b []float32, rowLo, rowHi, k, n int) {
	i := rowLo
	for ; i+4 <= rowHi; i += 4 {
		a0 := a[(i+0)*k:][:k]
		a1 := a[(i+1)*k:][:k]
		a2 := a[(i+2)*k:][:k]
		a3 := a[(i+3)*k:][:k]
		d0 := dst[(i+0)*n:][:n]
		d1 := dst[(i+1)*n:][:n]
		d2 := dst[(i+2)*n:][:n]
		d3 := dst[(i+3)*n:][:n]
		for j := 0; j < n; j++ {
			bj := b[j*k:][:k]
			var s0, s1, s2, s3 float32
			p := 0
			for ; p+4 <= k; p += 4 {
				bv0, bv1, bv2, bv3 := bj[p], bj[p+1], bj[p+2], bj[p+3]
				s0 += a0[p] * bv0
				s0 += a0[p+1] * bv1
				s0 += a0[p+2] * bv2
				s0 += a0[p+3] * bv3
				s1 += a1[p] * bv0
				s1 += a1[p+1] * bv1
				s1 += a1[p+2] * bv2
				s1 += a1[p+3] * bv3
				s2 += a2[p] * bv0
				s2 += a2[p+1] * bv1
				s2 += a2[p+2] * bv2
				s2 += a2[p+3] * bv3
				s3 += a3[p] * bv0
				s3 += a3[p+1] * bv1
				s3 += a3[p+2] * bv2
				s3 += a3[p+3] * bv3
			}
			for ; p < k; p++ {
				bv := bj[p]
				s0 += a0[p] * bv
				s1 += a1[p] * bv
				s2 += a2[p] * bv
				s3 += a3[p] * bv
			}
			d0[j] = s0
			d1[j] = s1
			d2[j] = s2
			d3[j] = s3
		}
	}
	for ; i < rowHi; i++ {
		ai := a[i*k:][:k]
		di := dst[i*n:][:n]
		for j := 0; j < n; j++ {
			bj := b[j*k:][:k]
			var s float32
			p := 0
			for ; p+4 <= k; p += 4 {
				s += ai[p] * bj[p]
				s += ai[p+1] * bj[p+1]
				s += ai[p+2] * bj[p+2]
				s += ai[p+3] * bj[p+3]
			}
			for ; p < k; p++ {
				s += ai[p] * bj[p]
			}
			di[j] = s
		}
	}
}

// MatMulTAccum computes dst += aᵀ @ b: a is (k,m), b is (k,n), dst is
// (m,n). This is the weight-gradient kernel of a linear layer
// (dW += xᵀ @ dy) without materializing xᵀ.
func MatMulTAccum(dst, a, b *Tensor) error {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		return fmt.Errorf("%w: matmulTAccum requires rank-2 operands", ErrShape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: matmulTAccum %vᵀ @ %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	g := matmulGrain(k * n)
	if serialFor(m, g) {
		matmulTAccumRange(dst.data, a.data, b.data, 0, m, k, m, n)
		return nil
	}
	ParallelFor(m, g, func(lo, hi int) {
		matmulTAccumRange(dst.data, a.data, b.data, lo, hi, k, m, n)
	})
	return nil
}

// matmulTAccumRange accumulates output rows [rowLo, rowHi) of
// dst += aᵀ @ b. The seed kernel iterated p outermost and touched all
// m output rows per step; here the loop is inverted so each worker
// owns a row range (required for a race-free parallel split),
// register-tiled four output rows at a time, and blocked four wide
// over the reduction so each dst element is read and written once per
// four multiply-adds. As everywhere in this file, every accumulation
// is its own single-add statement in ascending p order, so the bits
// match the seed kernel exactly.
func matmulTAccumRange(dst, a, b []float32, rowLo, rowHi, k, m, n int) {
	i := rowLo
	for ; i+4 <= rowHi; i += 4 {
		d0 := dst[(i+0)*n:][:n]
		d1 := dst[(i+1)*n:][:n]
		d2 := dst[(i+2)*n:][:n]
		d3 := dst[(i+3)*n:][:n]
		p := 0
		for ; p+4 <= k; p += 4 {
			ap0 := a[(p+0)*m:][:m]
			ap1 := a[(p+1)*m:][:m]
			ap2 := a[(p+2)*m:][:m]
			ap3 := a[(p+3)*m:][:m]
			av00, av01, av02, av03 := ap0[i], ap1[i], ap2[i], ap3[i]
			av10, av11, av12, av13 := ap0[i+1], ap1[i+1], ap2[i+1], ap3[i+1]
			av20, av21, av22, av23 := ap0[i+2], ap1[i+2], ap2[i+2], ap3[i+2]
			av30, av31, av32, av33 := ap0[i+3], ap1[i+3], ap2[i+3], ap3[i+3]
			b0 := b[(p+0)*n:][:n]
			b1 := b[(p+1)*n:][:n]
			b2 := b[(p+2)*n:][:n]
			b3 := b[(p+3)*n:][:n]
			for j, bv0 := range b0 {
				bv1 := b1[j]
				bv2 := b2[j]
				bv3 := b3[j]
				v0 := d0[j]
				v0 += av00 * bv0
				v0 += av01 * bv1
				v0 += av02 * bv2
				v0 += av03 * bv3
				d0[j] = v0
				v1 := d1[j]
				v1 += av10 * bv0
				v1 += av11 * bv1
				v1 += av12 * bv2
				v1 += av13 * bv3
				d1[j] = v1
				v2 := d2[j]
				v2 += av20 * bv0
				v2 += av21 * bv1
				v2 += av22 * bv2
				v2 += av23 * bv3
				d2[j] = v2
				v3 := d3[j]
				v3 += av30 * bv0
				v3 += av31 * bv1
				v3 += av32 * bv2
				v3 += av33 * bv3
				d3[j] = v3
			}
		}
		for ; p < k; p++ {
			ap := a[p*m:][:m]
			av0 := ap[i]
			av1 := ap[i+1]
			av2 := ap[i+2]
			av3 := ap[i+3]
			bp := b[p*n:][:n]
			for j, bv := range bp {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	for ; i < rowHi; i++ {
		di := dst[i*n:][:n]
		p := 0
		for ; p+4 <= k; p += 4 {
			av0 := a[(p+0)*m+i]
			av1 := a[(p+1)*m+i]
			av2 := a[(p+2)*m+i]
			av3 := a[(p+3)*m+i]
			b0 := b[(p+0)*n:][:n]
			b1 := b[(p+1)*n:][:n]
			b2 := b[(p+2)*n:][:n]
			b3 := b[(p+3)*n:][:n]
			for j, bv0 := range b0 {
				v := di[j]
				v += av0 * bv0
				v += av1 * b1[j]
				v += av2 * b2[j]
				v += av3 * b3[j]
				di[j] = v
			}
		}
		for ; p < k; p++ {
			av := a[p*m+i]
			bp := b[p*n:][:n]
			for j, bv := range bp {
				di[j] += av * bv
			}
		}
	}
}
