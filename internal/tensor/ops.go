package tensor

import (
	"fmt"
	"math"
)

// elemwiseGrain is the ParallelFor grain for memory-bound elementwise
// kernels: below ~32Ki elements the fan-out overhead exceeds the work.
const elemwiseGrain = 1 << 15

// softmaxGrainElems sizes the per-chunk row grain for SoftmaxRows;
// exp is compute-bound so it pays to fan out earlier than the
// elementwise ops do.
const softmaxGrainElems = 1 << 13

// Add computes dst = a + b elementwise. All three tensors must have the
// same element count; dst may alias a or b.
func Add(dst, a, b *Tensor) error {
	if len(a.data) != len(b.data) || len(dst.data) != len(a.data) {
		return fmt.Errorf("%w: add %v + %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	ad, bd, dd := a.data, b.data, dst.data
	if serialFor(len(dd), elemwiseGrain) {
		for i, av := range ad {
			dd[i] = av + bd[i]
		}
		return nil
	}
	ParallelFor(len(dd), elemwiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] + bd[i]
		}
	})
	return nil
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b *Tensor) error {
	if len(a.data) != len(b.data) || len(dst.data) != len(a.data) {
		return fmt.Errorf("%w: sub %v - %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	ad, bd, dd := a.data, b.data, dst.data
	if serialFor(len(dd), elemwiseGrain) {
		for i, av := range ad {
			dd[i] = av - bd[i]
		}
		return nil
	}
	ParallelFor(len(dd), elemwiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] - bd[i]
		}
	})
	return nil
}

// Mul computes dst = a * b elementwise (Hadamard product).
func Mul(dst, a, b *Tensor) error {
	if len(a.data) != len(b.data) || len(dst.data) != len(a.data) {
		return fmt.Errorf("%w: mul %v * %v -> %v", ErrShape, a.shape, b.shape, dst.shape)
	}
	ad, bd, dd := a.data, b.data, dst.data
	if serialFor(len(dd), elemwiseGrain) {
		for i, av := range ad {
			dd[i] = av * bd[i]
		}
		return nil
	}
	ParallelFor(len(dd), elemwiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] = ad[i] * bd[i]
		}
	})
	return nil
}

// AXPY computes dst += alpha * x.
func AXPY(alpha float32, x, dst *Tensor) error {
	if len(x.data) != len(dst.data) {
		return fmt.Errorf("%w: axpy %v into %v", ErrShape, x.shape, dst.shape)
	}
	xd, dd := x.data, dst.data
	if serialFor(len(dd), elemwiseGrain) {
		for i, xv := range xd {
			dd[i] += alpha * xv
		}
		return nil
	}
	ParallelFor(len(dd), elemwiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dd[i] += alpha * xd[i]
		}
	})
	return nil
}

// Scale multiplies every element of t by alpha in place.
func (t *Tensor) Scale(alpha float32) {
	td := t.data
	if serialFor(len(td), elemwiseGrain) {
		for i := range td {
			td[i] *= alpha
		}
		return
	}
	ParallelFor(len(td), elemwiseGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			td[i] *= alpha
		}
	})
}

// AddRowBroadcast computes dst[r, :] = a[r, :] + bias[:] for every row
// of a rank-2 tensor. dst may alias a.
func AddRowBroadcast(dst, a, bias *Tensor) error {
	if len(a.shape) != 2 || len(bias.shape) != 1 || a.shape[1] != bias.shape[0] {
		return fmt.Errorf("%w: row broadcast %v + %v", ErrShape, a.shape, bias.shape)
	}
	if !dst.SameShape(a) {
		return fmt.Errorf("%w: row broadcast destination %v for input %v", ErrShape, dst.shape, a.shape)
	}
	rows, cols := a.shape[0], a.shape[1]
	for r := 0; r < rows; r++ {
		ar := a.data[r*cols : (r+1)*cols]
		dr := dst.data[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			dr[c] = ar[c] + bias.data[c]
		}
	}
	return nil
}

// SumRows accumulates the rows of a rank-2 tensor into a rank-1 tensor:
// dst[c] += sum over rows of a[r, c]. Used for bias gradients.
func SumRows(dst, a *Tensor) error {
	if len(a.shape) != 2 || len(dst.shape) != 1 || a.shape[1] != dst.shape[0] {
		return fmt.Errorf("%w: sum rows of %v into %v", ErrShape, a.shape, dst.shape)
	}
	rows, cols := a.shape[0], a.shape[1]
	for r := 0; r < rows; r++ {
		ar := a.data[r*cols : (r+1)*cols]
		for c := 0; c < cols; c++ {
			dst.data[c] += ar[c]
		}
	}
	return nil
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the maximum absolute value of any element, or 0 for an
// empty tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// SoftmaxRows applies a numerically stable softmax to each row of a
// rank-2 tensor, writing into dst (which may alias a).
func SoftmaxRows(dst, a *Tensor) error {
	if len(a.shape) != 2 || !dst.SameShape(a) {
		return fmt.Errorf("%w: softmax rows of %v into %v", ErrShape, a.shape, dst.shape)
	}
	rows, cols := a.shape[0], a.shape[1]
	grain := 1
	if cols > 0 {
		grain = softmaxGrainElems / cols
		if grain < 1 {
			grain = 1
		}
	}
	if serialFor(rows, grain) {
		softmaxRowRange(dst.data, a.data, cols, 0, rows)
		return nil
	}
	ParallelFor(rows, grain, func(rowLo, rowHi int) {
		softmaxRowRange(dst.data, a.data, cols, rowLo, rowHi)
	})
	return nil
}

// softmaxRowRange applies the stable softmax to rows [rowLo, rowHi).
func softmaxRowRange(dst, a []float32, cols, rowLo, rowHi int) {
	for r := rowLo; r < rowHi; r++ {
		ar := a[r*cols : (r+1)*cols]
		dr := dst[r*cols : (r+1)*cols]
		maxV := ar[0]
		for _, v := range ar[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for c, v := range ar {
			e := float32(math.Exp(float64(v - maxV)))
			dr[c] = e
			sum += float64(e)
		}
		inv := float32(1.0 / sum)
		for c := range dr {
			dr[c] *= inv
		}
	}
}

// Transpose returns the transpose of a rank-2 tensor as a new tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if len(a.shape) != 2 {
		return nil, fmt.Errorf("%w: transpose of rank-%d tensor", ErrShape, len(a.shape))
	}
	rows, cols := a.shape[0], a.shape[1]
	out := New(cols, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.data[c*rows+r] = a.data[r*cols+c]
		}
	}
	return out, nil
}
