package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the package-level worker pool that every
// parallel kernel in the compute plane shares. Before the pool,
// matmulAccumParallel spawned GOMAXPROCS throwaway goroutines per
// call — tens of thousands per training step — and the backward-pass
// kernels had no parallel path at all.
//
// Design constraints, in priority order:
//
//  1. Bit-identical results at any parallelism. Work is always
//     partitioned by output row (or output element range), never by
//     reduction index, so every float is accumulated in the same
//     order whether one worker or sixteen run the kernel. The
//     determinism pins in internal/model depend on this.
//  2. No deadlocks under nesting. Attention parallelizes over
//     (batch, head) and each head body calls parallel matmuls.
//     ParallelFor never blocks on submission — if the task queue is
//     full, the caller runs the chunk inline — and a caller waiting
//     for its chunks drains the shared queue instead of parking, so
//     workers blocked inside nested waits can never strand the queue.
//  3. No goroutine churn. Workers are persistent; a ParallelFor call
//     only touches a channel and a WaitGroup.

// poolQueueDepth bounds the number of queued-but-unclaimed chunks.
// Beyond it, submissions fall back to inline execution, which
// naturally throttles nested fan-out instead of queueing it.
const poolQueueDepth = 256

var pool struct {
	mu     sync.Mutex
	target int           // configured parallelism, >= 1 once initialized
	tasks  chan func()   // shared by all generations, never closed
	quit   chan struct{} // closing retires the current worker generation
}

// parTarget mirrors pool.target so the per-kernel Parallelism check is
// a single atomic load instead of a mutex acquisition. 0 means the
// pool has not been initialized yet.
var parTarget atomic.Int32

// ensurePoolLocked lazily initializes the pool at GOMAXPROCS workers.
// Callers must hold pool.mu.
func ensurePoolLocked() {
	if pool.tasks != nil {
		return
	}
	pool.tasks = make(chan func(), poolQueueDepth)
	// One permanent worker drains tasks regardless of the configured
	// parallelism. It is insurance against a chunk that was queued at
	// the instant SetParallelism retired a generation: retired workers
	// stop pulling, but nothing queued is ever orphaned.
	go func() {
		for f := range pool.tasks {
			f()
		}
	}()
	setParallelismLocked(runtime.GOMAXPROCS(0))
}

// setParallelismLocked retires the current worker generation and
// starts one sized for n. Callers must hold pool.mu.
func setParallelismLocked(n int) {
	if n < 1 {
		n = 1
	}
	if pool.quit != nil {
		close(pool.quit)
	}
	pool.target = n
	parTarget.Store(int32(n))
	pool.quit = make(chan struct{})
	// The caller of ParallelFor always executes one chunk itself and
	// one permanent worker always runs, so a target of n needs n-2
	// additional workers.
	for i := 0; i < n-2; i++ {
		go poolWorker(pool.quit)
	}
}

func poolWorker(quit chan struct{}) {
	for {
		select {
		case f := <-pool.tasks:
			f()
		case <-quit:
			return
		}
	}
}

// SetParallelism fixes the number of workers the shared compute pool
// uses, including the calling goroutine. n <= 0 resets to
// runtime.GOMAXPROCS. Results of every kernel in this package are
// bit-identical at any setting; only throughput changes, so it is
// safe to call at any time, including between training steps.
func SetParallelism(n int) {
	pool.mu.Lock()
	defer pool.mu.Unlock()
	ensurePoolLocked()
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n != pool.target {
		setParallelismLocked(n)
	}
}

// Parallelism reports the pool's configured worker count.
func Parallelism() int {
	if n := parTarget.Load(); n > 0 {
		return int(n)
	}
	pool.mu.Lock()
	defer pool.mu.Unlock()
	ensurePoolLocked()
	return pool.target
}

// serialFor reports whether a kernel over n elements with the given
// grain would run as a single chunk anyway. Hot call sites use it to
// skip ParallelFor entirely, which also skips the closure allocation
// the fan-out path requires.
func serialFor(n, grain int) bool {
	return n <= grain || Parallelism() <= 1
}

// ParallelFor runs fn over [0, n) partitioned into contiguous chunks
// of at least grain iterations each, fanning the chunks out over the
// shared pool. fn(lo, hi) must be safe to call concurrently for
// disjoint ranges. The call returns after every chunk has finished.
//
// The caller always executes the final chunk itself, and chunks that
// cannot be handed off without blocking run inline on the caller, so
// ParallelFor is safe to nest and degrades to a plain loop when the
// pool is saturated or parallelism is 1.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Parallelism()
	if w <= 1 || n <= grain {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	size := (n + chunks - 1) / chunks
	// remaining counts outstanding chunks plus a sentinel held during
	// submission so a fast worker cannot close done before the loop has
	// submitted everything.
	var remaining atomic.Int32
	remaining.Store(1)
	done := make(chan struct{})
	finish := func() {
		if remaining.Add(-1) == 0 {
			close(done)
		}
	}
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi >= n {
			// Last chunk: run on the caller instead of waiting idle.
			fn(lo, n)
			break
		}
		lo, hi := lo, hi
		remaining.Add(1)
		task := func() {
			defer finish()
			fn(lo, hi)
		}
		select {
		case pool.tasks <- task:
		default:
			remaining.Add(-1) // sentinel still held, cannot reach 0
			fn(lo, hi)
		}
	}
	finish() // drop the sentinel
	// Wait by helping: drain the shared queue until our own chunks are
	// done. Parking here instead would deadlock nested fan-out — every
	// worker could be blocked in an inner wait exactly like this one,
	// with the chunks they are waiting on queued behind ours.
	for {
		select {
		case <-done:
			return
		case f := <-pool.tasks:
			f()
		}
	}
}
