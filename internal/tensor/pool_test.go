package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, par := range []int{1, 2, 3, 8} {
		SetParallelism(par)
		for _, n := range []int{1, 2, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 64, 10000} {
				hits := make([]int32, n)
				ParallelFor(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("par=%d n=%d grain=%d: bad chunk [%d,%d)", par, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("par=%d n=%d grain=%d: index %d visited %d times", par, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestParallelForZeroIterations(t *testing.T) {
	called := false
	ParallelFor(0, 1, func(lo, hi int) { called = true })
	ParallelFor(-3, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ParallelFor ran fn for an empty range")
	}
}

// TestParallelForNested pins the no-deadlock guarantee: a parallel
// region whose bodies invoke further parallel regions must complete.
// Waiting callers drain the shared queue instead of parking, so
// workers blocked in inner waits cannot strand the chunks queued
// behind theirs (parking here deadlocks when every consumer holds an
// outer chunk, which a 1-CPU -race run reliably produces).
func TestParallelForNested(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(4)
	var total int64
	ParallelFor(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(100, 10, func(ilo, ihi int) {
				atomic.AddInt64(&total, int64(ihi-ilo))
			})
		}
	})
	if total != 800 {
		t.Fatalf("nested ParallelFor covered %d of 800 iterations", total)
	}
}

func TestSetParallelismResize(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)

	for _, n := range []int{4, 1, 2, 16} {
		SetParallelism(n)
		if got := Parallelism(); got != n {
			t.Fatalf("Parallelism() = %d after SetParallelism(%d)", got, n)
		}
		// The pool must keep functioning across resizes.
		var count int64
		ParallelFor(500, 1, func(lo, hi int) {
			atomic.AddInt64(&count, int64(hi-lo))
		})
		if count != 500 {
			t.Fatalf("after resize to %d: covered %d of 500", n, count)
		}
	}

	SetParallelism(0) // reset to GOMAXPROCS
	if got, want := Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("SetParallelism(0) → %d, want GOMAXPROCS %d", got, want)
	}
}

// TestSetParallelismDuringParallelFor resizes the pool while kernels
// are in flight; every in-flight chunk must still complete exactly
// once.
func TestSetParallelismDuringParallelFor(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(4)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		sizes := []int{1, 2, 4, 8}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				SetParallelism(sizes[i%len(sizes)])
			}
		}
	}()
	for iter := 0; iter < 50; iter++ {
		var count int64
		ParallelFor(200, 1, func(lo, hi int) {
			atomic.AddInt64(&count, int64(hi-lo))
		})
		if count != 200 {
			t.Fatalf("iteration %d: covered %d of 200", iter, count)
		}
	}
	close(stop)
	wg.Wait()
}
