package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: matmul distributes over addition: A(B+C) == AB + AC.
func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewNormal(rng, 1, m, k)
		b := NewNormal(rng, 1, k, n)
		c := NewNormal(rng, 1, k, n)

		bc := New(k, n)
		if err := Add(bc, b, c); err != nil {
			return false
		}
		left := New(m, n)
		if err := MatMul(left, a, bc); err != nil {
			return false
		}
		ab := New(m, n)
		ac := New(m, n)
		if err := MatMul(ab, a, b); err != nil {
			return false
		}
		if err := MatMul(ac, a, c); err != nil {
			return false
		}
		right := New(m, n)
		if err := Add(right, ab, ac); err != nil {
			return false
		}
		for i := range left.Data() {
			if math.Abs(float64(left.Data()[i]-right.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AXPY is linear: axpy(a, x, d) then axpy(b, x, d) equals
// axpy(a+b, x, d).
func TestAXPYLinearityProperty(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw int8) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(16)
		alpha, beta := float32(aRaw)/16, float32(bRaw)/16
		x := NewNormal(rng, 1, n)
		d1 := NewNormal(rng, 1, n)
		d2 := d1.Clone()

		if err := AXPY(alpha, x, d1); err != nil {
			return false
		}
		if err := AXPY(beta, x, d1); err != nil {
			return false
		}
		if err := AXPY(alpha+beta, x, d2); err != nil {
			return false
		}
		for i := range d1.Data() {
			if math.Abs(float64(d1.Data()[i]-d2.Data()[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SumRows(A) equals matmul(1ᵀ, A).
func TestSumRowsMatchesOnesMatmulProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		a := NewNormal(rng, 1, rows, cols)
		viaSum := New(cols)
		if err := SumRows(viaSum, a); err != nil {
			return false
		}
		ones := New(1, rows)
		ones.Fill(1)
		viaMatmul := New(1, cols)
		if err := MatMul(viaMatmul, ones, a); err != nil {
			return false
		}
		for i := 0; i < cols; i++ {
			if math.Abs(float64(viaSum.At(i)-viaMatmul.At(0, i))) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling commutes with matmul: (αA)B == α(AB).
func TestScaleCommutesWithMatMulProperty(t *testing.T) {
	f := func(seed uint64, sRaw int8) bool {
		rng := NewRNG(seed)
		alpha := float32(sRaw) / 8
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := NewNormal(rng, 1, m, k)
		b := NewNormal(rng, 1, k, n)

		scaledA := a.Clone()
		scaledA.Scale(alpha)
		left := New(m, n)
		if err := MatMul(left, scaledA, b); err != nil {
			return false
		}
		right := New(m, n)
		if err := MatMul(right, a, b); err != nil {
			return false
		}
		right.Scale(alpha)
		for i := range left.Data() {
			if math.Abs(float64(left.Data()[i]-right.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reshape round-trips preserve both data and total size.
func TestReshapeRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		a := NewNormal(rng, 1, rows, cols)
		flat, err := a.Reshape(rows * cols)
		if err != nil {
			return false
		}
		back, err := flat.Reshape(rows, cols)
		if err != nil {
			return false
		}
		if !back.SameShape(a) {
			return false
		}
		for i := range a.Data() {
			if a.Data()[i] != back.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
