package tensor

import "math"

// RNG is a small, deterministic pseudo-random number generator
// (xorshift64*). Every stochastic component in the repository draws
// from an explicitly seeded RNG so experiments are reproducible
// bit-for-bit; nothing uses global randomness.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant because the xorshift state must be
// non-zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal sample using the Box-Muller
// transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Split derives an independent generator from r, advancing r. Useful
// for giving each layer its own stream without correlated values.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}

// FillNormal fills t with N(0, std²) samples.
func (t *Tensor) FillNormal(r *RNG, std float64) {
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64() * std)
	}
}

// FillUniform fills t with uniform samples in [lo, hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + r.Float64()*(hi-lo))
	}
}

// NewNormal creates a tensor filled with N(0, std²) samples.
func NewNormal(r *RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	t.FillNormal(r, std)
	return t
}

// NewXavier creates a tensor initialized with Xavier/Glorot scaling for
// a (fanIn, fanOut) weight matrix.
func NewXavier(r *RNG, fanIn, fanOut int) *Tensor {
	std := math.Sqrt(2.0 / float64(fanIn+fanOut))
	return NewNormal(r, std, fanIn, fanOut)
}
