package tensor

import "fmt"

// StackRows concatenates 2-D tensors row-wise into a freshly allocated
// tensor: the batch former's stacking primitive (docs/BATCHING.md).
// Every part must be rank 2 with the same column count; parts keep
// their internal row order, so per-row results of row-local kernels
// over the stack are bit-identical to running each part alone.
func StackRows(parts []*Tensor) (*Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: stack of zero tensors", ErrShape)
	}
	cols := 0
	rows := 0
	for i, p := range parts {
		if p.Rank() != 2 {
			return nil, fmt.Errorf("%w: part %d has rank %d, want 2", ErrShape, i, p.Rank())
		}
		if i == 0 {
			cols = p.Dim(1)
		} else if p.Dim(1) != cols {
			return nil, fmt.Errorf("%w: part %d has %d columns, part 0 has %d", ErrShape, i, p.Dim(1), cols)
		}
		rows += p.Dim(0)
	}
	out := New(rows, cols)
	off := 0
	for _, p := range parts {
		off += copy(out.data[off:], p.data)
	}
	return out, nil
}
