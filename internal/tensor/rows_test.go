package tensor

import (
	"errors"
	"testing"
)

func TestStackRows(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float32{5, 6}, 1, 2)
	out, err := StackRows([]*Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 3 || out.Dim(1) != 2 {
		t.Fatalf("shape = %v, want [3 2]", out.Shape())
	}
	want := []float32{1, 2, 3, 4, 5, 6}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("data = %v, want %v", out.Data(), want)
		}
	}
	// The stack owns its storage: segment views of it must not alias
	// the parts.
	out.Data()[0] = 99
	if a.Data()[0] != 1 {
		t.Fatal("stack aliases its parts")
	}
}

func TestStackRowsShapeErrors(t *testing.T) {
	if _, err := StackRows(nil); !errors.Is(err, ErrShape) {
		t.Errorf("empty stack: err = %v", err)
	}
	a := MustFromSlice([]float32{1, 2}, 1, 2)
	c := MustFromSlice([]float32{1, 2, 3}, 1, 3)
	if _, err := StackRows([]*Tensor{a, c}); !errors.Is(err, ErrShape) {
		t.Errorf("column mismatch: err = %v", err)
	}
	d := MustFromSlice([]float32{1, 2}, 2)
	if _, err := StackRows([]*Tensor{a, d}); !errors.Is(err, ErrShape) {
		t.Errorf("rank mismatch: err = %v", err)
	}
}

// TestStackRowsRoundTripSlice2D: slicing the stack back out returns
// bit-identical views of each part's rows.
func TestStackRowsRoundTripSlice2D(t *testing.T) {
	rng := NewRNG(5)
	parts := []*Tensor{
		NewNormal(rng, 1, 3, 4),
		NewNormal(rng, 1, 1, 4),
		NewNormal(rng, 1, 2, 4),
	}
	out, err := StackRows(parts)
	if err != nil {
		t.Fatal(err)
	}
	lo := 0
	for i, p := range parts {
		hi := lo + p.Dim(0)
		seg, err := out.Slice2D(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range seg.Data() {
			if v != p.Data()[j] {
				t.Fatalf("part %d differs at %d", i, j)
			}
		}
		lo = hi
	}
}
