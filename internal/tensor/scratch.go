package tensor

import "sync"

// scratchMaxPerClass caps how many free buffers a size class retains.
// Attention fans out at most pool-parallelism head workers, each with
// a handful of buffers, so a small cap bounds arena growth while still
// absorbing the steady-state working set of a training step.
const scratchMaxPerClass = 64

// Scratch is a buffer arena for step-scoped tensors. Get returns a
// zeroed tensor of the requested shape, drawing from a free list
// keyed by element count; Put returns tensors to the free list for
// reuse. Unlike sync.Pool, nothing is dropped nondeterministically
// and every Get observes identical (all-zero) contents whether the
// buffer is fresh or recycled, so swapping New for Get can never
// change a computed value.
//
// A nil *Scratch is valid and degrades to plain allocation, which
// keeps call sites unconditional.
//
// Ownership contract: a tensor obtained from Get has exactly one
// owner at a time. Put hands ownership back; using a tensor after
// putting it is a bug. Never put a tensor that a cache or caller
// still references. Put is idempotent within the retention window
// (duplicates are detected and dropped) so a defensive extra Put
// cannot corrupt the free list.
type Scratch struct {
	mu    sync.Mutex
	free  map[int][]*Tensor
	gets  uint64
	hits  uint64
	bytes int64 // bytes currently retained on free lists
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch {
	return &Scratch{free: make(map[int][]*Tensor)}
}

// Get returns a zeroed tensor with the given shape, reusing a retained
// buffer of the same element count when one is available.
func (s *Scratch) Get(shape ...int) *Tensor {
	if s == nil {
		return New(shape...)
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	var t *Tensor
	s.mu.Lock()
	s.gets++
	if list := s.free[n]; len(list) > 0 {
		t = list[len(list)-1]
		list[len(list)-1] = nil
		s.free[n] = list[:len(list)-1]
		s.hits++
		s.bytes -= int64(n) * 4
	}
	s.mu.Unlock()
	if t == nil {
		return New(shape...)
	}
	t.shape = append(t.shape[:0], shape...)
	t.Zero()
	return t
}

// Put returns tensors to the arena. Nil entries and duplicates of
// already-retained buffers are ignored; size classes past their cap
// fall through to the garbage collector.
func (s *Scratch) Put(ts ...*Tensor) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for _, t := range ts {
		if t == nil || len(t.data) == 0 {
			continue
		}
		n := len(t.data)
		list := s.free[n]
		if len(list) >= scratchMaxPerClass {
			continue
		}
		dup := false
		for _, have := range list {
			if have == t {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.free[n] = append(list, t)
		s.bytes += int64(n) * 4
	}
	s.mu.Unlock()
}

// Stats reports the total Get count and how many were served from the
// free lists.
func (s *Scratch) Stats() (gets, hits uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.hits
}

// RetainedBytes reports how much buffer memory the arena currently
// holds on its free lists.
func (s *Scratch) RetainedBytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
