package tensor

import "testing"

func TestScratchReusesAndZeroesBuffers(t *testing.T) {
	sc := NewScratch()
	a := sc.Get(4, 6)
	a.Fill(3)
	sc.Put(a)

	b := sc.Get(4, 6)
	if &b.Data()[0] != &a.Data()[0] {
		t.Fatal("Get did not reuse the retained buffer")
	}
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %g", i, v)
		}
	}
	gets, hits := sc.Stats()
	if gets != 2 || hits != 1 {
		t.Fatalf("stats = (%d gets, %d hits), want (2, 1)", gets, hits)
	}
}

func TestScratchReshapesAcrossShapesOfSameSize(t *testing.T) {
	sc := NewScratch()
	a := sc.Get(4, 6)
	sc.Put(a)
	b := sc.Get(2, 12)
	if &b.Data()[0] != &a.Data()[0] {
		t.Fatal("same element count should reuse the buffer across shapes")
	}
	if b.Dim(0) != 2 || b.Dim(1) != 12 {
		t.Fatalf("recycled tensor has shape %v, want [2 12]", b.Shape())
	}
}

func TestScratchDistinctSizeClasses(t *testing.T) {
	sc := NewScratch()
	a := sc.Get(4, 6)
	sc.Put(a)
	b := sc.Get(5, 5)
	if &b.Data()[0] == &a.Data()[0] {
		t.Fatal("different element counts must not share a buffer")
	}
}

func TestScratchDuplicatePutIgnored(t *testing.T) {
	sc := NewScratch()
	a := sc.Get(3, 3)
	sc.Put(a)
	sc.Put(a) // defensive double-put must not corrupt the free list
	x := sc.Get(3, 3)
	y := sc.Get(3, 3)
	if &x.Data()[0] == &y.Data()[0] {
		t.Fatal("duplicate Put handed the same buffer to two owners")
	}
}

func TestScratchNilSafety(t *testing.T) {
	var sc *Scratch
	a := sc.Get(2, 2)
	if a == nil || a.Len() != 4 {
		t.Fatal("nil scratch must degrade to allocation")
	}
	sc.Put(a) // must not panic
	if gets, hits := sc.Stats(); gets != 0 || hits != 0 {
		t.Fatal("nil scratch must report zero stats")
	}
	if sc.RetainedBytes() != 0 {
		t.Fatal("nil scratch retains nothing")
	}
}

func TestScratchPutSkipsNilAndEmpty(t *testing.T) {
	sc := NewScratch()
	sc.Put(nil, New(0)) // must not panic or retain
	if sc.RetainedBytes() != 0 {
		t.Fatalf("retained %d bytes after putting nil/empty", sc.RetainedBytes())
	}
}

func TestScratchClassCap(t *testing.T) {
	sc := NewScratch()
	ts := make([]*Tensor, scratchMaxPerClass+10)
	for i := range ts {
		ts[i] = New(8)
	}
	sc.Put(ts...)
	want := int64(scratchMaxPerClass) * 8 * 4
	if got := sc.RetainedBytes(); got != want {
		t.Fatalf("retained %d bytes, want cap %d", got, want)
	}
}

func TestScratchRetainedBytesTracksGetPut(t *testing.T) {
	sc := NewScratch()
	a := sc.Get(10, 10)
	if sc.RetainedBytes() != 0 {
		t.Fatal("outstanding buffers are not retained")
	}
	sc.Put(a)
	if got := sc.RetainedBytes(); got != 400 {
		t.Fatalf("retained %d bytes after put, want 400", got)
	}
	sc.Get(10, 10)
	if got := sc.RetainedBytes(); got != 0 {
		t.Fatalf("retained %d bytes after get, want 0", got)
	}
}
