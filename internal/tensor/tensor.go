// Package tensor implements dense float32 tensors and the numerical
// kernels needed to train transformer models on the CPU.
//
// Tensors are row-major and contiguous. The package favours explicit,
// allocation-conscious APIs over operator sugar: most operations have
// an in-place or destination-passing variant so the training loop can
// reuse buffers.
package tensor

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrShape is returned (wrapped) by operations whose operand shapes are
// incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major float32 tensor.
type Tensor struct {
	data  []float32
	shape []int
}

// New creates a zero-filled tensor with the given shape.
// It panics if any dimension is negative; a zero-dimension tensor is a
// scalar holding one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{
		data:  make([]float32, n),
		shape: append([]int(nil), shape...),
	}
}

// FromSlice wraps data in a tensor with the given shape. The slice is
// used directly (not copied); len(data) must equal the shape's element
// count.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative dimension %d", ErrShape, d)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v (%d elements)",
			ErrShape, len(data), shape, n)
	}
	return &Tensor{data: data, shape: append([]int(nil), shape...)}, nil
}

// MustFromSlice is FromSlice that panics on error. Intended for tests
// and package-internal literals with statically known shapes.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Bytes returns the in-memory size of the tensor's data in bytes.
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", ix, i, t.shape[i]))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element
// counts (shape itself is not checked beyond length).
func (t *Tensor) CopyFrom(src *Tensor) error {
	if len(t.data) != len(src.data) {
		return fmt.Errorf("%w: copy from %v into %v", ErrShape, src.shape, t.shape)
	}
	copy(t.data, src.data)
	return nil
}

// Reshape returns a tensor sharing t's data with a new shape. The new
// shape must have the same number of elements.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v (%d elements) to %v (%d elements)",
			ErrShape, t.shape, len(t.data), shape, n)
	}
	return &Tensor{data: t.data, shape: append([]int(nil), shape...)}, nil
}

// MustReshape is Reshape that panics on error.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// Row returns a view of row i of a rank-2 tensor as a rank-1 tensor
// sharing storage.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	cols := t.shape[1]
	return &Tensor{data: t.data[i*cols : (i+1)*cols], shape: []int{cols}}
}

// Slice2D returns a view of rows [lo, hi) of a rank-2 tensor, sharing
// storage with t.
func (t *Tensor) Slice2D(lo, hi int) (*Tensor, error) {
	if len(t.shape) != 2 {
		return nil, fmt.Errorf("%w: Slice2D on rank-%d tensor", ErrShape, len(t.shape))
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		return nil, fmt.Errorf("%w: rows [%d,%d) out of range for %v", ErrShape, lo, hi, t.shape)
	}
	cols := t.shape[1]
	return &Tensor{data: t.data[lo*cols : hi*cols], shape: []int{hi - lo, cols}}, nil
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description: shape plus up to 8 leading
// elements. Intended for debugging, not serialization.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor")
	b.WriteString(shapeString(t.shape))
	b.WriteString("[")
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(strconv.FormatFloat(float64(t.data[i]), 'g', 4, 32))
	}
	if len(t.data) > 8 {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}

func shapeString(shape []int) string {
	parts := make([]string, len(shape))
	for i, d := range shape {
		parts[i] = strconv.Itoa(d)
	}
	return "(" + strings.Join(parts, "x") + ")"
}
