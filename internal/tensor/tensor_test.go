package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	tn := New(2, 3)
	if tn.Len() != 6 {
		t.Fatalf("Len() = %d, want 6", tn.Len())
	}
	for i, v := range tn.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if tn.Rank() != 2 || tn.Dim(0) != 2 || tn.Dim(1) != 3 {
		t.Fatalf("shape = %v, want (2,3)", tn.Shape())
	}
}

func TestNewScalar(t *testing.T) {
	s := New()
	if s.Len() != 1 {
		t.Fatalf("scalar Len() = %d, want 1", s.Len())
	}
}

func TestFromSlice(t *testing.T) {
	tests := []struct {
		name    string
		data    []float32
		shape   []int
		wantErr bool
	}{
		{"exact", []float32{1, 2, 3, 4}, []int{2, 2}, false},
		{"too short", []float32{1, 2, 3}, []int{2, 2}, true},
		{"too long", []float32{1, 2, 3, 4, 5}, []int{2, 2}, true},
		{"negative dim", []float32{1}, []int{-1}, true},
		{"rank 1", []float32{1, 2}, []int{2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := FromSlice(tt.data, tt.shape...)
			if (err != nil) != tt.wantErr {
				t.Fatalf("FromSlice error = %v, wantErr = %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrShape) {
				t.Fatalf("error %v is not ErrShape", err)
			}
		})
	}
}

func TestAtSet(t *testing.T) {
	tn := New(3, 4)
	tn.Set(7.5, 2, 1)
	if got := tn.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if got := tn.Data()[2*4+1]; got != 7.5 {
		t.Fatalf("row-major offset holds %v, want 7.5", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	b := a.Clone()
	b.Set(99, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshape(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	// Views share storage.
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Fatal("Reshape does not share storage")
	}
	if _, err := a.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("Reshape to wrong size: err = %v, want ErrShape", err)
	}
}

func TestRowView(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if r.Len() != 3 || r.At(0) != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	r.Set(0, 2)
	if a.At(1, 2) != 0 {
		t.Fatal("Row is not a view")
	}
}

func TestSlice2D(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	s, err := a.Slice2D(1, 3)
	if err != nil {
		t.Fatalf("Slice2D: %v", err)
	}
	if s.Dim(0) != 2 || s.At(0, 0) != 3 {
		t.Fatalf("Slice2D = %v", s)
	}
	if _, err := a.Slice2D(2, 5); err == nil {
		t.Fatal("out-of-range Slice2D succeeded")
	}
}

func TestAddSubMul(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3}, 3)
	b := MustFromSlice([]float32{10, 20, 30}, 3)
	dst := New(3)
	if err := Add(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if dst.At(2) != 33 {
		t.Fatalf("add: %v", dst)
	}
	if err := Sub(dst, b, a); err != nil {
		t.Fatal(err)
	}
	if dst.At(1) != 18 {
		t.Fatalf("sub: %v", dst)
	}
	if err := Mul(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if dst.At(0) != 10 {
		t.Fatalf("mul: %v", dst)
	}
	if err := Add(dst, a, New(4)); !errors.Is(err, ErrShape) {
		t.Fatalf("mismatched add err = %v", err)
	}
}

func TestAXPY(t *testing.T) {
	x := MustFromSlice([]float32{1, 2}, 2)
	dst := MustFromSlice([]float32{10, 10}, 2)
	if err := AXPY(2, x, dst); err != nil {
		t.Fatal(err)
	}
	if dst.At(0) != 12 || dst.At(1) != 14 {
		t.Fatalf("AXPY: %v", dst)
	}
}

func TestAddRowBroadcast(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	bias := MustFromSlice([]float32{10, 20}, 2)
	dst := New(2, 2)
	if err := AddRowBroadcast(dst, a, bias); err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 13, 24}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("broadcast[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
}

func TestSumRows(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	dst := New(2)
	if err := SumRows(dst, a); err != nil {
		t.Fatal(err)
	}
	if dst.At(0) != 9 || dst.At(1) != 12 {
		t.Fatalf("SumRows: %v", dst)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	dst := New(2, 3)
	if err := SoftmaxRows(dst, a); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			v := dst.At(r, c)
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				t.Fatalf("softmax[%d,%d] = %v out of range", r, c, v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	// Row of equal logits is uniform, even at extreme magnitude.
	if math.Abs(float64(dst.At(1, 0))-1.0/3.0) > 1e-5 {
		t.Fatalf("uniform row: %v", dst.At(1, 0))
	}
	// Monotone: larger logit gets larger probability.
	if !(dst.At(0, 2) > dst.At(0, 1) && dst.At(0, 1) > dst.At(0, 0)) {
		t.Fatal("softmax not monotone in logits")
	}
}

func TestMatMulBasic(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	dst := New(2, 2)
	if err := MatMul(dst, a, b); err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("matmul[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	if err := MatMul(New(2, 2), a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("inner mismatch err = %v", err)
	}
	if err := MatMul(New(3, 3), New(2, 3), New(3, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("dst mismatch err = %v", err)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := NewNormal(rng, 1, 5, 5)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	dst := New(5, 5)
	if err := MatMul(dst, a, id); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if math.Abs(float64(dst.Data()[i]-a.Data()[i])) > 1e-6 {
			t.Fatalf("A@I != A at %d", i)
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a := NewNormal(rng, 1, 4, 6)
	b := NewNormal(rng, 1, 5, 6) // (n,k): want a @ bᵀ -> (4,5)
	got := New(4, 5)
	if err := MatMulT(got, a, b); err != nil {
		t.Fatal(err)
	}
	bt, err := Transpose(b)
	if err != nil {
		t.Fatal(err)
	}
	want := New(4, 5)
	if err := MatMul(want, a, bt); err != nil {
		t.Fatal(err)
	}
	assertClose(t, got, want, 1e-5)
}

func TestMatMulTAccumMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(3)
	a := NewNormal(rng, 1, 7, 3) // (k,m)
	b := NewNormal(rng, 1, 7, 4) // (k,n)
	got := New(3, 4)
	if err := MatMulTAccum(got, a, b); err != nil {
		t.Fatal(err)
	}
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	want := New(3, 4)
	if err := MatMul(want, at, b); err != nil {
		t.Fatal(err)
	}
	assertClose(t, got, want, 1e-5)
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Exercise the pooled parallel path (work above the fan-out grain
	// at parallelism > 1) and confirm the result matches a serial
	// reference computation.
	defer SetParallelism(Parallelism())
	SetParallelism(4)
	rng := NewRNG(4)
	m, k, n := 69, 67, 33
	a := NewNormal(rng, 1, m, k)
	b := NewNormal(rng, 1, k, n)
	got := New(m, n)
	if err := MatMul(got, a, b); err != nil {
		t.Fatal(err)
	}
	want := New(m, n)
	matmulAccumRange(want.Data(), a.Data(), b.Data(), 0, m, k, n)
	assertClose(t, got, want, 1e-5)
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		a := NewNormal(rng, 1, rows, cols)
		at, err := Transpose(a)
		if err != nil {
			return false
		}
		att, err := Transpose(at)
		if err != nil {
			return false
		}
		if !att.SameShape(a) {
			return false
		}
		for i := range a.Data() {
			if a.Data()[i] != att.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (A @ B) @ C == A @ (B @ C) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n, p := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewNormal(rng, 1, m, k)
		b := NewNormal(rng, 1, k, n)
		c := NewNormal(rng, 1, n, p)

		ab := New(m, n)
		if err := MatMul(ab, a, b); err != nil {
			return false
		}
		left := New(m, p)
		if err := MatMul(left, ab, c); err != nil {
			return false
		}
		bc := New(k, p)
		if err := MatMul(bc, b, c); err != nil {
			return false
		}
		right := New(m, p)
		if err := MatMul(right, a, bc); err != nil {
			return false
		}
		for i := range left.Data() {
			if math.Abs(float64(left.Data()[i]-right.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for any input.
func TestSoftmaxDistributionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(10)
		a := New(rows, cols)
		a.FillUniform(rng, -50, 50)
		dst := New(rows, cols)
		if err := SoftmaxRows(dst, a); err != nil {
			return false
		}
		for r := 0; r < rows; r++ {
			var sum float64
			for c := 0; c < cols; c++ {
				v := float64(dst.At(r, c))
				if v < 0 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed produced zero state")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(7)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestBytes(t *testing.T) {
	if got := New(10, 10).Bytes(); got != 400 {
		t.Fatalf("Bytes() = %d, want 400", got)
	}
}

func TestNormsAndSums(t *testing.T) {
	a := MustFromSlice([]float32{3, -4}, 2)
	if a.Sum() != -1 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if math.Abs(a.L2Norm()-5) > 1e-9 {
		t.Fatalf("L2Norm = %v", a.L2Norm())
	}
}

func TestFillAndZero(t *testing.T) {
	a := New(4)
	a.Fill(2.5)
	if a.Sum() != 10 {
		t.Fatalf("Fill: %v", a)
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Fatalf("Zero: %v", a)
	}
	a.Fill(1)
	a.Scale(3)
	if a.Sum() != 12 {
		t.Fatalf("Scale: %v", a)
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	for _, tn := range []*Tensor{New(), New(3), New(100)} {
		if s := tn.String(); s == "" {
			t.Fatal("empty String()")
		}
	}
}

func assertClose(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape %v != %v", got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		if math.Abs(float64(got.Data()[i]-want.Data()[i])) > tol {
			t.Fatalf("element %d: got %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}
