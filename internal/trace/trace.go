// Package trace collects per-iteration time breakdowns (communication,
// computation, scheduling — the decomposition of the paper's Tables
// 1-3) and renders experiment results as aligned text tables and CSV.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Breakdown accumulates the three per-iteration time components the
// paper's performance analysis separates.
type Breakdown struct {
	mu         sync.Mutex
	comm       time.Duration
	comp       time.Duration
	sched      time.Duration
	iterations int
}

// Add records one iteration's components.
func (b *Breakdown) Add(comm, comp, sched time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.comm += comm
	b.comp += comp
	b.sched += sched
	b.iterations++
}

// Iterations returns the number of recorded iterations.
func (b *Breakdown) Iterations() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.iterations
}

// Totals returns the accumulated component sums (not averages). Span
// traces recorded alongside a run reconstruct exactly these totals.
func (b *Breakdown) Totals() (comm, comp, sched time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.comm, b.comp, b.sched
}

// AvgComm returns mean communication time per iteration.
func (b *Breakdown) AvgComm() time.Duration { return b.avg(&b.comm) }

// AvgComp returns mean computation time per iteration.
func (b *Breakdown) AvgComp() time.Duration { return b.avg(&b.comp) }

// AvgSched returns mean scheduling (queueing) time per iteration.
func (b *Breakdown) AvgSched() time.Duration { return b.avg(&b.sched) }

// AvgTotal returns mean total time per iteration.
func (b *Breakdown) AvgTotal() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.iterations == 0 {
		return 0
	}
	return (b.comm + b.comp + b.sched) / time.Duration(b.iterations)
}

func (b *Breakdown) avg(field *time.Duration) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.iterations == 0 {
		return 0
	}
	return *field / time.Duration(b.iterations)
}

// Merge folds other's totals into b (for aggregating per-client
// breakdowns into a system view).
func (b *Breakdown) Merge(other *Breakdown) {
	other.mu.Lock()
	comm, comp, sched, iters := other.comm, other.comp, other.sched, other.iterations
	other.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.comm += comm
	b.comp += comp
	b.sched += sched
	b.iterations += iters
}

// Seconds formats a duration as seconds with adaptive precision,
// matching how the paper reports times.
func Seconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s == 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.6f", s)
	case s < 1:
		return fmt.Sprintf("%.3f", s)
	default:
		return fmt.Sprintf("%.1f", s)
	}
}

// GiB formats bytes as binary gigabytes.
func GiB(bytes int64) string {
	return fmt.Sprintf("%.1f", float64(bytes)/(1<<30))
}

// Bytes formats a byte count with an adaptive binary unit.
func Bytes(bytes int64) string {
	switch {
	case bytes >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(bytes)/(1<<30))
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(bytes)/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(bytes)/(1<<10))
	default:
		return fmt.Sprintf("%d B", bytes)
	}
}

// Table is an aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	err     error
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded. A row with more cells
// than the table has columns is truncated, and the first such mismatch
// is recorded: check Err after building, and WriteCSV refuses to emit a
// table that silently lost data.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) && t.err == nil {
		t.err = fmt.Errorf("trace: row %d of table %q has %d cells but only %d columns",
			len(t.rows), t.Title, len(cells), len(t.Headers))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Err returns the first row-arity mistake recorded by AddRow, or nil.
func (t *Table) Err() error { return t.err }

// Rows returns the row data.
func (t *Table) Rows() [][]string { return t.rows }

// Render writes the aligned table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV emits the table as CSV. It fails if AddRow recorded a
// truncated row, rather than exporting silently incomplete data.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.err != nil {
		return t.err
	}
	writeLine := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			escaped[i] = c
		}
		_, err := io.WriteString(w, strings.Join(escaped, ",")+"\n")
		return err
	}
	if err := writeLine(t.Headers); err != nil {
		return fmt.Errorf("trace: write csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return fmt.Errorf("trace: write csv row: %w", err)
		}
	}
	return nil
}

// Series is one line of a figure: y values indexed by x.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing an x axis, rendered as a table
// (one column per series).
type Figure struct {
	Title  string
	XLabel string
	Series []*Series
}

// NewFigure creates a figure.
func NewFigure(title, xLabel string) *Figure {
	return &Figure{Title: title, XLabel: xLabel}
}

// NewSeries adds and returns a named series.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Table converts the figure into a renderable table, joining series on
// x values.
func (f *Figure) Table() *Table {
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(f.Title, headers...)

	// Collect distinct x values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "n/a"
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// Render renders the figure's table followed by per-series sparklines
// so the shape of each curve is visible in plain terminal output.
func (f *Figure) Render() string {
	out := f.Table().Render()
	spark := f.Sparklines()
	if spark != "" {
		out += spark
	}
	return out
}

// sparkLevels are the eight block glyphs used by Sparklines.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparklines renders each series as a row of block characters scaled
// to the figure's global maximum, so relative magnitudes across series
// stay comparable.
func (f *Figure) Sparklines() string {
	var maxY float64
	for _, s := range f.Series {
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY <= 0 {
		return ""
	}
	nameWidth := 0
	for _, s := range f.Series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	var b strings.Builder
	for _, s := range f.Series {
		if len(s.Y) == 0 {
			continue
		}
		b.WriteString(s.Name)
		b.WriteString(strings.Repeat(" ", nameWidth-len(s.Name)))
		b.WriteString("  ")
		for _, y := range s.Y {
			idx := int(y / maxY * float64(len(sparkLevels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkLevels) {
				idx = len(sparkLevels) - 1
			}
			b.WriteRune(sparkLevels[idx])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}
