package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBreakdownAverages(t *testing.T) {
	var b Breakdown
	b.Add(2*time.Second, time.Second, 500*time.Millisecond)
	b.Add(4*time.Second, time.Second, 1500*time.Millisecond)
	if b.Iterations() != 2 {
		t.Fatalf("iterations = %d", b.Iterations())
	}
	if b.AvgComm() != 3*time.Second {
		t.Fatalf("avg comm = %v", b.AvgComm())
	}
	if b.AvgComp() != time.Second {
		t.Fatalf("avg comp = %v", b.AvgComp())
	}
	if b.AvgSched() != time.Second {
		t.Fatalf("avg sched = %v", b.AvgSched())
	}
	if b.AvgTotal() != 5*time.Second {
		t.Fatalf("avg total = %v", b.AvgTotal())
	}
}

func TestBreakdownEmpty(t *testing.T) {
	var b Breakdown
	if b.AvgComm() != 0 || b.AvgTotal() != 0 {
		t.Fatal("empty breakdown not zero")
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(time.Second, 0, 0)
	b.Add(3*time.Second, 0, 0)
	a.Merge(&b)
	if a.Iterations() != 2 || a.AvgComm() != 2*time.Second {
		t.Fatalf("merged avg = %v over %d", a.AvgComm(), a.Iterations())
	}
}

func TestBreakdownConcurrent(t *testing.T) {
	var b Breakdown
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Add(time.Millisecond, time.Millisecond, 0)
			}
		}()
	}
	wg.Wait()
	if b.Iterations() != 800 {
		t.Fatalf("iterations = %d", b.Iterations())
	}
}

func TestSecondsFormatting(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{130 * time.Microsecond, "0.000130"},
		{250 * time.Millisecond, "0.250"},
		{63100 * time.Millisecond, "63.1"},
	}
	for _, tt := range tests {
		if got := Seconds(tt.d); got != tt.want {
			t.Fatalf("Seconds(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestGiBFormatting(t *testing.T) {
	if got := GiB(24 << 30); got != "24.0" {
		t.Fatalf("GiB = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Test Table", "Model", "Clients", "Time (s)")
	tb.AddRow("opt", "4", "7.1")
	tb.AddRow("llama2-7b", "2", "63.1")
	out := tb.Render()
	if !strings.Contains(out, "Test Table") || !strings.Contains(out, "llama2-7b") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "Clients" and the row values start at the same offset.
	if strings.Index(lines[1], "Clients") != strings.Index(lines[3], "4") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only")
	if got := tb.Rows()[0][1]; got != "" {
		t.Fatalf("pad = %q", got)
	}
	if out := tb.Render(); !strings.Contains(out, "only") {
		t.Fatal("row lost")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", "quote\"inside")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "\"with,comma\"") {
		t.Fatalf("csv escaping:\n%s", out)
	}
	if !strings.Contains(out, "\"quote\"\"inside\"") {
		t.Fatalf("quote escaping:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("header:\n%s", out)
	}
}

func TestFigureTable(t *testing.T) {
	f := NewFigure("Fig X", "clients")
	vanilla := f.NewSeries("vanilla")
	menos := f.NewSeries("menos")
	for n := 1; n <= 3; n++ {
		vanilla.Add(float64(n), float64(n)*10)
		menos.Add(float64(n), 5)
	}
	// Series with a missing point.
	menos.X = menos.X[:2]
	menos.Y = menos.Y[:2]
	out := f.Render()
	if !strings.Contains(out, "vanilla") || !strings.Contains(out, "menos") {
		t.Fatalf("figure:\n%s", out)
	}
	if !strings.Contains(out, "n/a") {
		t.Fatalf("missing point not marked:\n%s", out)
	}
	if !strings.Contains(out, "30") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(4) != "4" {
		t.Fatal("integer formatting")
	}
	if trimFloat(4.5) != "4.500" {
		t.Fatalf("got %s", trimFloat(4.5))
	}
}

func TestSparklines(t *testing.T) {
	f := NewFigure("Fig", "x")
	a := f.NewSeries("vanilla")
	b := f.NewSeries("menos")
	for i := 1; i <= 5; i++ {
		a.Add(float64(i), float64(i*20))
		b.Add(float64(i), 5)
	}
	out := f.Sparklines()
	if !strings.Contains(out, "vanilla") || !strings.Contains(out, "menos") {
		t.Fatalf("sparklines:\n%s", out)
	}
	// The max point renders as the tallest block.
	if !strings.Contains(out, "█") {
		t.Fatalf("no full block in:\n%s", out)
	}
	// The flat small series renders as low blocks.
	if !strings.Contains(out, "▁") {
		t.Fatalf("no low block in:\n%s", out)
	}
	// Render appends sparklines after the table.
	full := f.Render()
	if !strings.Contains(full, "█") {
		t.Fatal("Render omitted sparklines")
	}
}

func TestSparklinesEmptyFigure(t *testing.T) {
	f := NewFigure("empty", "x")
	f.NewSeries("zero").Add(1, 0)
	if out := f.Sparklines(); out != "" {
		t.Fatalf("all-zero figure produced sparkline %q", out)
	}
}

func TestTableLongRowRecordsError(t *testing.T) {
	tb := NewTable("narrow", "A", "B")
	tb.AddRow("1", "2")
	if tb.Err() != nil {
		t.Fatalf("exact-arity row flagged: %v", tb.Err())
	}
	tb.AddRow("1", "2", "3", "4")
	err := tb.Err()
	if err == nil {
		t.Fatal("overlong row not recorded")
	}
	if !strings.Contains(err.Error(), "narrow") || !strings.Contains(err.Error(), "4 cells") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// The row is still present (truncated) for Render.
	if len(tb.Rows()) != 2 || tb.Rows()[1][1] != "2" {
		t.Fatalf("rows = %v", tb.Rows())
	}
	// The first mistake wins; a later one does not overwrite it.
	tb.AddRow("x", "y", "z")
	if tb.Err() != err {
		t.Fatal("recorded error overwritten")
	}
	// CSV export refuses to emit truncated data.
	var sb strings.Builder
	if csvErr := tb.WriteCSV(&sb); csvErr != err {
		t.Fatalf("WriteCSV error = %v, want %v", csvErr, err)
	}
	if sb.Len() != 0 {
		t.Fatalf("partial csv written: %q", sb.String())
	}
}

func TestTableShortRowNoError(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("just-one")
	if tb.Err() != nil {
		t.Fatalf("padded short row flagged: %v", tb.Err())
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "just-one,,\n") {
		t.Fatalf("short row csv:\n%s", sb.String())
	}
}

func TestFigureCSVExport(t *testing.T) {
	f := NewFigure("Fig 6", "clients")
	menos := f.NewSeries("menos")
	menos.Add(1, 154.1)
	menos.Add(4, 160)
	vanilla := f.NewSeries("vanilla")
	vanilla.Add(1, 155)
	// vanilla has no x=4 point: the join emits n/a.
	var sb strings.Builder
	if err := f.Table().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "clients,menos,vanilla\n1,154.100,155\n4,160,n/a\n"
	if got != want {
		t.Fatalf("figure csv:\n got %q\nwant %q", got, want)
	}
}

func TestSparklinesAllZeroSeries(t *testing.T) {
	f := NewFigure("flat", "x")
	s := f.NewSeries("zeros")
	s.Add(1, 0)
	s.Add(2, 0)
	// Global max is zero: no scale exists, so no sparklines — but
	// Render must still produce the table without panicking.
	if got := f.Sparklines(); got != "" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
	if out := f.Render(); !strings.Contains(out, "zeros") {
		t.Fatalf("table missing from render:\n%s", out)
	}
}

func TestSparklinesSinglePoint(t *testing.T) {
	f := NewFigure("point", "x")
	f.NewSeries("solo").Add(1, 42)
	got := f.Sparklines()
	want := "solo  █\n"
	if got != want {
		t.Fatalf("single-point sparkline = %q, want %q", got, want)
	}
}

func TestSparklinesMixedWithEmptySeries(t *testing.T) {
	f := NewFigure("mixed", "x")
	full := f.NewSeries("full")
	full.Add(1, 1)
	full.Add(2, 8)
	f.NewSeries("empty") // no points: skipped, no blank line
	got := f.Sparklines()
	want := "full   ▁█\n"
	if got != want {
		t.Fatalf("sparklines = %q, want %q", got, want)
	}
}
