// Package tsdb is the bounded in-memory time-series store behind the
// fleet telemetry plane (cmd/menos-fleetd): the control plane scrapes
// every managed server's /metrics.json each poll tick and appends the
// samples here, labeled by server and tenant, so alert rules
// (internal/alert) and range queries (fleetd /queryz) can reason about
// the fleet *over time* instead of only its latest snapshot.
//
// The store follows the repo's determinism discipline: it holds no
// clock and spawns no goroutine. Every sample arrives with an explicit
// timestamp from the caller's obs.Clock (wall time in the daemon,
// virtual time in tests), and retention is anchored at the newest
// timestamp ever appended — two identical append sequences leave two
// bit-identical stores.
//
// Memory is bounded on three axes:
//
//   - per-series raw ring: samples older than RawWindow (or beyond
//     MaxRawPoints) are folded into downsampled buckets;
//   - per-series downsampled ring: Resolution-wide aggregate buckets
//     (count/sum/min/max) retained up to Retention, then dropped;
//   - cardinality: at most MaxSeries distinct series; appends to new
//     series beyond the cap are counted and discarded, never silently
//     grown.
package tsdb

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SeriesID names one time series: a metric name plus the fleet labels
// the control plane scrapes by. Server is the fleet identity of the
// originating endpoint (0 for fleet-level series computed by recording
// rules); Client is the tenant label of per-client families ("" for
// server-level series).
type SeriesID struct {
	Name   string
	Server int
	Client string
}

// String renders the series in a stable prometheus-ish form, e.g.
// `menos_sched_queue_depth{server=1}` — the instance key used by alert
// state and /alertz output.
func (id SeriesID) String() string {
	if id.Server == 0 && id.Client == "" {
		return id.Name
	}
	s := id.Name + "{server=" + strconv.Itoa(id.Server)
	if id.Client != "" {
		s += ",client=" + strconv.Quote(id.Client)
	}
	return s + "}"
}

// less orders series deterministically: name, then server, then client.
func (id SeriesID) less(o SeriesID) bool {
	if id.Name != o.Name {
		return id.Name < o.Name
	}
	if id.Server != o.Server {
		return id.Server < o.Server
	}
	return id.Client < o.Client
}

// Point is one raw sample.
type Point struct {
	At    time.Duration
	Value float64
}

// Bucket is one downsampled aggregate: all raw samples whose timestamp
// fell in [Start, Start+Resolution).
type Bucket struct {
	Start time.Duration
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Avg returns the bucket mean.
func (b Bucket) Avg() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// Config bounds a Store. Zero values get defaults from New.
type Config struct {
	// RawWindow is how long samples stay at full resolution (default
	// 5m).
	RawWindow time.Duration
	// Resolution is the downsample bucket width (default 30s).
	Resolution time.Duration
	// Retention is the total horizon, downsampled buckets included
	// (default 1h). Must be >= RawWindow.
	Retention time.Duration
	// MaxSeries caps distinct series (default 4096). Appends creating a
	// series beyond the cap are dropped and counted.
	MaxSeries int
	// MaxRawPoints caps one series' raw ring regardless of RawWindow
	// (default 4096) — a misbehaving scraper cannot grow a ring without
	// bound between retention sweeps.
	MaxRawPoints int
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.RawWindow <= 0 {
		c.RawWindow = 5 * time.Minute
	}
	if c.Resolution <= 0 {
		c.Resolution = 30 * time.Second
	}
	if c.Retention <= 0 {
		c.Retention = time.Hour
	}
	if c.Retention < c.RawWindow {
		c.Retention = c.RawWindow
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 4096
	}
	if c.MaxRawPoints <= 0 {
		c.MaxRawPoints = 4096
	}
	return c
}

// series is one stored series: a raw tail plus the downsampled history
// in front of it. Both slices are oldest-first.
type series struct {
	raw  []Point
	down []Bucket
}

// Store is the bounded store. All methods are safe for concurrent use.
type Store struct {
	cfg Config

	mu            sync.RWMutex
	series        map[SeriesID]*series
	latest        time.Duration
	samples       int64
	droppedSeries int64
}

// New builds a Store.
func New(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), series: make(map[SeriesID]*series)}
}

// Config returns the normalized configuration.
func (s *Store) Config() Config { return s.cfg }

// Append records one sample. Timestamps should be non-decreasing per
// series (a scrape loop's are); an out-of-order timestamp is clamped
// to the series' newest so rings stay sorted. Returns false when the
// sample was dropped at the cardinality cap. Safe on nil.
func (s *Store) Append(id SeriesID, at time.Duration, v float64) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[id]
	if sr == nil {
		if len(s.series) >= s.cfg.MaxSeries {
			s.droppedSeries++
			return false
		}
		sr = &series{}
		s.series[id] = sr
	}
	if n := len(sr.raw); n > 0 && at < sr.raw[n-1].At {
		at = sr.raw[n-1].At
	}
	sr.raw = append(sr.raw, Point{At: at, Value: v})
	if at > s.latest {
		s.latest = at
	}
	s.samples++
	s.compactLocked(sr)
	return true
}

// compactLocked folds raw samples past the raw window (or ring cap)
// into downsampled buckets and drops buckets past retention. Caller
// holds s.mu.
func (s *Store) compactLocked(sr *series) {
	rawCut := s.latest - s.cfg.RawWindow
	fold := 0
	for fold < len(sr.raw) &&
		(sr.raw[fold].At < rawCut || len(sr.raw)-fold > s.cfg.MaxRawPoints) {
		p := sr.raw[fold]
		start := p.At - p.At%s.cfg.Resolution
		if n := len(sr.down); n > 0 && sr.down[n-1].Start == start {
			b := &sr.down[n-1]
			b.Count++
			b.Sum += p.Value
			if p.Value < b.Min {
				b.Min = p.Value
			}
			if p.Value > b.Max {
				b.Max = p.Value
			}
		} else {
			sr.down = append(sr.down, Bucket{Start: start, Count: 1, Sum: p.Value, Min: p.Value, Max: p.Value})
		}
		fold++
	}
	if fold > 0 {
		n := copy(sr.raw, sr.raw[fold:])
		sr.raw = sr.raw[:n]
	}
	downCut := s.latest - s.cfg.Retention
	drop := 0
	for drop < len(sr.down) && sr.down[drop].Start+s.cfg.Resolution <= downCut {
		drop++
	}
	if drop > 0 {
		n := copy(sr.down, sr.down[drop:])
		sr.down = sr.down[:n]
	}
}

// Latest returns the newest timestamp appended (0 before any sample).
// Safe on nil.
func (s *Store) Latest() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest
}

// Stats reports the store's occupancy: live series, total samples ever
// appended, and series-creation drops at the cardinality cap. Safe on
// nil.
func (s *Store) Stats() (seriesCount int, samples, droppedSeries int64) {
	if s == nil {
		return 0, 0, 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series), s.samples, s.droppedSeries
}

// Names returns the distinct series names, sorted. Safe on nil.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	seen := make(map[string]bool)
	for id := range s.series {
		seen[id.Name] = true
	}
	s.mu.RUnlock()
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Servers returns the sorted distinct Server labels carrying a series
// named name with an empty Client label — the fan-out set for
// per-server alert rules. Safe on nil.
func (s *Store) Servers(name string) []int {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	var ids []int
	for id := range s.series {
		if id.Name == name && id.Client == "" {
			ids = append(ids, id.Server)
		}
	}
	s.mu.RUnlock()
	sort.Ints(ids)
	return ids
}

// Series is one query result: downsampled history rendered as
// bucket-mean points (stamped at the bucket midpoint), followed by the
// raw tail.
type Series struct {
	ID     SeriesID
	Points []Point
}

// rangePoints assembles the merged point view of one series restricted
// to [from, to]. Caller holds s.mu (read).
func (s *Store) rangePointsLocked(sr *series, from, to time.Duration) []Point {
	var out []Point
	half := s.cfg.Resolution / 2
	for _, b := range sr.down {
		at := b.Start + half
		if at < from || at > to {
			continue
		}
		out = append(out, Point{At: at, Value: b.Avg()})
	}
	for _, p := range sr.raw {
		if p.At < from || p.At > to {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Query returns every series named name (any server/client label) with
// points in [from, to], sorted by series ID; series with no point in
// range are omitted. Safe on nil.
func (s *Store) Query(name string, from, to time.Duration) []Series {
	return s.query(func(id SeriesID) bool { return id.Name == name }, from, to)
}

// QueryID returns one exact series' points in [from, to]. Safe on nil.
func (s *Store) QueryID(id SeriesID, from, to time.Duration) (Series, bool) {
	res := s.query(func(o SeriesID) bool { return o == id }, from, to)
	if len(res) == 0 {
		return Series{ID: id}, false
	}
	return res[0], true
}

func (s *Store) query(match func(SeriesID) bool, from, to time.Duration) []Series {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	var out []Series
	for id, sr := range s.series {
		if !match(id) {
			continue
		}
		pts := s.rangePointsLocked(sr, from, to)
		if len(pts) == 0 {
			continue
		}
		out = append(out, Series{ID: id, Points: pts})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID.less(out[j].ID) })
	return out
}

// Last returns the series' newest sample (raw if any, else the latest
// downsampled bucket's mean at its midpoint). Safe on nil.
func (s *Store) Last(id SeriesID) (Point, bool) {
	if s == nil {
		return Point{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[id]
	if sr == nil {
		return Point{}, false
	}
	if n := len(sr.raw); n > 0 {
		return sr.raw[n-1], true
	}
	if n := len(sr.down); n > 0 {
		b := sr.down[n-1]
		return Point{At: b.Start + s.cfg.Resolution/2, Value: b.Avg()}, true
	}
	return Point{}, false
}

// AvgOver returns the sample-weighted mean of the series over
// [from, to]: raw points weigh 1, downsampled buckets weigh their
// Count. False when no sample falls in range. Safe on nil.
func (s *Store) AvgOver(id SeriesID, from, to time.Duration) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[id]
	if sr == nil {
		return 0, false
	}
	var sum float64
	var n int64
	half := s.cfg.Resolution / 2
	for _, b := range sr.down {
		if at := b.Start + half; at < from || at > to {
			continue
		}
		sum += b.Sum
		n += b.Count
	}
	for _, p := range sr.raw {
		if p.At < from || p.At > to {
			continue
		}
		sum += p.Value
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// MaxOver returns the series maximum over [from, to] (bucket maxima
// included). Safe on nil.
func (s *Store) MaxOver(id SeriesID, from, to time.Duration) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[id]
	if sr == nil {
		return 0, false
	}
	var max float64
	found := false
	half := s.cfg.Resolution / 2
	consider := func(v float64) {
		if !found || v > max {
			max = v
			found = true
		}
	}
	for _, b := range sr.down {
		if at := b.Start + half; at >= from && at <= to {
			consider(b.Max)
		}
	}
	for _, p := range sr.raw {
		if p.At >= from && p.At <= to {
			consider(p.Value)
		}
	}
	return max, found
}

// Increase returns how much a counter series grew over [from, to]:
// the sum of positive deltas between consecutive raw samples in range,
// counter resets handled Prometheus-style (a decrease contributes the
// new value). Only the raw ring is considered — rate-style rules must
// evaluate windows inside RawWindow, which every built-in alert window
// is. The sample at or immediately before from seeds the baseline.
// False when fewer than one raw sample is in range. Safe on nil.
func (s *Store) Increase(id SeriesID, from, to time.Duration) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[id]
	if sr == nil || len(sr.raw) == 0 {
		return 0, false
	}
	var inc float64
	var prev float64
	havePrev := false
	seen := false
	for _, p := range sr.raw {
		if p.At > to {
			break
		}
		if p.At < from {
			prev = p.Value
			havePrev = true
			continue
		}
		seen = true
		if havePrev {
			if d := p.Value - prev; d >= 0 {
				inc += d
			} else {
				inc += p.Value
			}
		}
		prev = p.Value
		havePrev = true
	}
	if !seen {
		return 0, false
	}
	return inc, true
}

// GoString aids test failure messages.
func (p Point) GoString() string {
	return fmt.Sprintf("{%s %g}", p.At, p.Value)
}
