package tsdb

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAppendQueryRoundTrip(t *testing.T) {
	s := New(Config{})
	id := SeriesID{Name: "m", Server: 1}
	for i := 0; i < 5; i++ {
		if !s.Append(id, time.Duration(i)*time.Second, float64(i)) {
			t.Fatalf("append %d dropped", i)
		}
	}
	res := s.Query("m", 0, time.Hour)
	if len(res) != 1 || len(res[0].Points) != 5 {
		t.Fatalf("query = %+v, want 1 series x 5 points", res)
	}
	if p, ok := s.Last(id); !ok || !approx(p.Value, 4) {
		t.Fatalf("Last = %v %v, want 4", p, ok)
	}
	if _, ok := s.Last(SeriesID{Name: "m", Server: 2}); ok {
		t.Fatal("Last on absent series should report !ok")
	}
}

func TestDownsampleAndRetentionBounds(t *testing.T) {
	cfg := Config{
		RawWindow:  time.Minute,
		Resolution: 10 * time.Second,
		Retention:  5 * time.Minute,
	}
	s := New(cfg)
	id := SeriesID{Name: "m", Server: 1}
	// One sample per second for 20 minutes: far beyond retention.
	for i := 0; i < 20*60; i++ {
		s.Append(id, time.Duration(i)*time.Second, float64(i))
	}
	sr := s.series[id]
	// Raw ring holds at most RawWindow of samples.
	if n := len(sr.raw); n == 0 || time.Duration(n)*time.Second > cfg.RawWindow+time.Second {
		t.Fatalf("raw ring %d samples, want <= %v worth", n, cfg.RawWindow)
	}
	// Downsampled ring holds at most Retention/Resolution buckets.
	maxBuckets := int(cfg.Retention/cfg.Resolution) + 1
	if n := len(sr.down); n == 0 || n > maxBuckets {
		t.Fatalf("down ring %d buckets, want 1..%d", n, maxBuckets)
	}
	// Nothing older than Retention survives.
	latest := s.Latest()
	for _, b := range sr.down {
		if b.Start+cfg.Resolution <= latest-cfg.Retention {
			t.Fatalf("bucket at %v survived retention (latest %v)", b.Start, latest)
		}
	}
	// Buckets aggregate correctly: each full bucket holds Resolution
	// worth of consecutive integers, so Avg is the midpoint and
	// Max-Min spans the count. The newest bucket may be partial — the
	// fold boundary (latest-RawWindow) can land mid-bucket.
	for i, b := range sr.down {
		if i == len(sr.down)-1 {
			break
		}
		if b.Count != int64(cfg.Resolution/time.Second) {
			t.Fatalf("bucket count %d, want %d", b.Count, cfg.Resolution/time.Second)
		}
		if b.Max-b.Min != float64(b.Count-1) {
			t.Fatalf("bucket min/max %v/%v span wrong for count %d", b.Min, b.Max, b.Count)
		}
		if want := (b.Min + b.Max) / 2; !approx(b.Avg(), want) {
			t.Fatalf("bucket avg %v, want %v", b.Avg(), want)
		}
	}
}

func TestMaxRawPointsCapsRing(t *testing.T) {
	s := New(Config{RawWindow: time.Hour, MaxRawPoints: 16})
	id := SeriesID{Name: "m"}
	// All samples at nearly the same instant: the RawWindow cut never
	// fires, only the point cap can bound the ring.
	for i := 0; i < 1000; i++ {
		s.Append(id, time.Duration(i)*time.Millisecond, 1)
	}
	if n := len(s.series[id].raw); n > 16 {
		t.Fatalf("raw ring %d points, cap 16", n)
	}
	// Folded samples are still accounted for in buckets.
	var count int64
	for _, b := range s.series[id].down {
		count += b.Count
	}
	count += int64(len(s.series[id].raw))
	if count != 1000 {
		t.Fatalf("samples accounted %d, want 1000", count)
	}
}

func TestSeriesCardinalityCap(t *testing.T) {
	s := New(Config{MaxSeries: 3})
	for i := 0; i < 10; i++ {
		s.Append(SeriesID{Name: "m", Server: i}, 0, 1)
	}
	n, samples, dropped := s.Stats()
	if n != 3 || samples != 3 || dropped != 7 {
		t.Fatalf("stats = %d series %d samples %d dropped, want 3/3/7", n, samples, dropped)
	}
	// Existing series still accept appends at the cap.
	if !s.Append(SeriesID{Name: "m", Server: 0}, time.Second, 2) {
		t.Fatal("append to existing series dropped at cap")
	}
}

func TestOutOfOrderClamped(t *testing.T) {
	s := New(Config{})
	id := SeriesID{Name: "m"}
	s.Append(id, 10*time.Second, 1)
	s.Append(id, 5*time.Second, 2) // clamped to 10s
	sr := s.series[id]
	if sr.raw[1].At != 10*time.Second {
		t.Fatalf("out-of-order sample at %v, want clamped to 10s", sr.raw[1].At)
	}
}

func TestAvgMaxOver(t *testing.T) {
	s := New(Config{RawWindow: 10 * time.Second, Resolution: 5 * time.Second, Retention: time.Hour})
	id := SeriesID{Name: "m"}
	// 1..40 at 1s spacing; early samples fold into buckets.
	for i := 1; i <= 40; i++ {
		s.Append(id, time.Duration(i)*time.Second, float64(i))
	}
	// Whole-range mean must weigh buckets by count: mean of 1..40.
	if avg, ok := s.AvgOver(id, 0, time.Hour); !ok || !approx(avg, 20.5) {
		t.Fatalf("AvgOver = %v %v, want 20.5", avg, ok)
	}
	if max, ok := s.MaxOver(id, 0, time.Hour); !ok || !approx(max, 40) {
		t.Fatalf("MaxOver = %v %v, want 40", max, ok)
	}
	if _, ok := s.AvgOver(id, time.Hour, 2*time.Hour); ok {
		t.Fatal("AvgOver over empty range should report !ok")
	}
}

func TestIncreaseCounterResets(t *testing.T) {
	s := New(Config{})
	id := SeriesID{Name: "c"}
	vals := []float64{10, 15, 20, 3, 8} // reset between 20 and 3
	for i, v := range vals {
		s.Append(id, time.Duration(i)*time.Second, v)
	}
	// 5 + 5 + (reset: +3) + 5 = 18
	if inc, ok := s.Increase(id, 0, time.Hour); !ok || !approx(inc, 18) {
		t.Fatalf("Increase = %v %v, want 18", inc, ok)
	}
	// Sub-range seeds baseline from the sample before `from`:
	// from=1.5s..end covers 20,3,8 with baseline 15 → 5+3+5 = 13.
	if inc, ok := s.Increase(id, 1500*time.Millisecond, time.Hour); !ok || !approx(inc, 13) {
		t.Fatalf("Increase(sub) = %v %v, want 13", inc, ok)
	}
	if _, ok := s.Increase(id, time.Hour, 2*time.Hour); ok {
		t.Fatal("Increase over empty range should report !ok")
	}
}

func TestNamesAndServers(t *testing.T) {
	s := New(Config{})
	s.Append(SeriesID{Name: "b", Server: 2}, 0, 1)
	s.Append(SeriesID{Name: "a", Server: 1}, 0, 1)
	s.Append(SeriesID{Name: "a", Server: 3}, 0, 1)
	s.Append(SeriesID{Name: "a", Server: 3, Client: "t1"}, 0, 1)
	if got := s.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	// Servers excludes per-client series.
	if got := s.Servers("a"); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Servers = %v", got)
	}
}

func TestQueryDeterministicOrder(t *testing.T) {
	s := New(Config{})
	ids := []SeriesID{
		{Name: "m", Server: 2, Client: "z"},
		{Name: "m", Server: 2, Client: "a"},
		{Name: "m", Server: 1},
	}
	for _, id := range ids {
		s.Append(id, 0, 1)
	}
	res := s.Query("m", 0, time.Hour)
	want := []SeriesID{{Name: "m", Server: 1}, {Name: "m", Server: 2, Client: "a"}, {Name: "m", Server: 2, Client: "z"}}
	if len(res) != len(want) {
		t.Fatalf("got %d series", len(res))
	}
	for i := range want {
		if res[i].ID != want[i] {
			t.Fatalf("series %d = %v, want %v", i, res[i].ID, want[i])
		}
	}
}

func TestSeriesIDString(t *testing.T) {
	cases := []struct {
		id   SeriesID
		want string
	}{
		{SeriesID{Name: "m"}, "m"},
		{SeriesID{Name: "m", Server: 3}, "m{server=3}"},
		{SeriesID{Name: "m", Server: 3, Client: "c1"}, `m{server=3,client="c1"}`},
	}
	for _, c := range cases {
		if got := c.id.String(); got != c.want {
			t.Fatalf("String(%+v) = %q, want %q", c.id, got, c.want)
		}
	}
}

func TestNilStoreSafe(t *testing.T) {
	var s *Store
	if s.Append(SeriesID{Name: "m"}, 0, 1) {
		t.Fatal("nil Append should drop")
	}
	if got := s.Query("m", 0, time.Hour); got != nil {
		t.Fatalf("nil Query = %v", got)
	}
	if _, ok := s.Last(SeriesID{Name: "m"}); ok {
		t.Fatal("nil Last ok")
	}
	if _, ok := s.AvgOver(SeriesID{Name: "m"}, 0, 1); ok {
		t.Fatal("nil AvgOver ok")
	}
	if _, ok := s.Increase(SeriesID{Name: "m"}, 0, 1); ok {
		t.Fatal("nil Increase ok")
	}
	if s.Names() != nil || s.Servers("m") != nil {
		t.Fatal("nil listings should be empty")
	}
}

// TestConcurrentScrapeQuery is the -race hammer: writers appending like
// a scrape loop while readers run every query path.
func TestConcurrentScrapeQuery(t *testing.T) {
	s := New(Config{RawWindow: time.Second, Resolution: 250 * time.Millisecond, Retention: 4 * time.Second})
	var wg sync.WaitGroup
	const writers, readers, iters = 4, 4, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := SeriesID{Name: "m", Server: w}
			cid := SeriesID{Name: "mc", Server: w, Client: fmt.Sprintf("c%d", w)}
			for i := 0; i < iters; i++ {
				at := time.Duration(i) * 10 * time.Millisecond
				s.Append(id, at, float64(i))
				s.Append(cid, at, float64(i))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			id := SeriesID{Name: "m", Server: r}
			for i := 0; i < iters; i++ {
				s.Query("m", 0, time.Hour)
				s.Last(id)
				s.AvgOver(id, 0, time.Hour)
				s.MaxOver(id, 0, time.Hour)
				s.Increase(id, 0, time.Hour)
				s.Names()
				s.Servers("m")
				s.Stats()
			}
		}(r)
	}
	wg.Wait()
	if n, _, _ := s.Stats(); n != 2*writers {
		t.Fatalf("series count %d, want %d", n, 2*writers)
	}
}
