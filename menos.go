// Package menos is the public API of the Menos reproduction: a
// memory-efficient split fine-tuning framework for large language
// models, after Hu & Li, "Menos: Split Fine-Tuning Large Language
// Models with Efficient GPU Memory Sharing" (MIDDLEWARE 2024).
//
// The framework has two planes that share one scheduler and one
// sharing mechanism:
//
//   - A functional plane that really fine-tunes (tiny) transformer
//     models over TCP: the server shares a single base-model copy
//     across clients (§3.1) and allocates memory on demand under the
//     Algorithm-2 scheduler; clients hold the input/output sections
//     and their private data.
//   - A performance plane that simulates full-size workloads
//     (OPT-1.3B, Llama 2-7B) on modeled V100s over a modeled WAN,
//     regenerating the paper's tables and figures deterministically.
//
// Quick start — serve a model and fine-tune against it:
//
//	dep, err := menos.NewDeployment(menos.DeploymentConfig{
//		Model:      menos.OPTTiny(),
//		WeightSeed: 42,
//	})
//	addr, err := dep.Listen("127.0.0.1:0")
//	c, err := menos.Dial(addr, menos.ClientConfig{
//		ClientID:   "alice",
//		Model:      menos.OPTTiny(),
//		WeightSeed: 42,
//		Adapter:    menos.DefaultLoRA(),
//		Batch:      4, Seq: 32,
//	})
//	res, err := c.Step(ids, targets) // one split fine-tuning iteration
package menos

import (
	"menos/internal/adapter"
	"menos/internal/checkpoint"
	"menos/internal/client"
	"menos/internal/core"
	"menos/internal/experiments"
	"menos/internal/gpu"
	"menos/internal/memmodel"
	"menos/internal/model"
	"menos/internal/quant"
	"menos/internal/sched"
	"menos/internal/splitsim"
	"menos/internal/trace"
)

// Model configuration.
type (
	// ModelConfig describes a decoder-only transformer.
	ModelConfig = model.Config
	// Family selects OPT-style or Llama-style architecture.
	Family = model.Family
)

// Architecture families.
const (
	FamilyOPT   = model.FamilyOPT
	FamilyLlama = model.FamilyLlama
)

// Model presets.
var (
	// OPT1_3B and Llama2_7B are the paper's evaluation shapes: use
	// them with the memory model and simulation, not for training.
	OPT1_3B   = model.OPT1_3B
	Llama2_7B = model.Llama2_7B
	// OPTTiny and LlamaTiny are CPU-trainable configurations.
	OPTTiny   = model.OPTTiny
	LlamaTiny = model.LlamaTiny
	// ModelByName resolves a preset by name.
	ModelByName = model.ConfigByName
)

// Adapters.
type (
	// AdapterSpec is a serializable fine-tuning adapter description.
	AdapterSpec = adapter.Spec
	// AdapterKind selects LoRA, prefix-tuning or bottleneck adapters.
	AdapterKind = adapter.Kind
)

// Adapter kinds.
const (
	AdapterLoRA       = adapter.KindLoRA
	AdapterPrefix     = adapter.KindPrefix
	AdapterBottleneck = adapter.KindBottleneck
)

// DefaultLoRA returns the paper's LoRA configuration (r=8, α=16, on
// the query and value projections).
func DefaultLoRA() AdapterSpec { return adapter.LoRASpec(adapter.DefaultLoRA()) }

// DefaultPrefix returns an 8-slot prefix-tuning configuration.
func DefaultPrefix() AdapterSpec { return adapter.PrefixSpec(adapter.DefaultPrefix()) }

// Deployment: the server side.
type (
	// DeploymentConfig configures a Menos server deployment.
	DeploymentConfig = core.DeploymentConfig
	// Deployment is a running Menos server with its shared store.
	Deployment = core.Deployment
)

// NewDeployment builds a Menos server (shared base model preloaded).
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	return core.NewDeployment(cfg)
}

// GPU presets for deployments and simulations.
var (
	V100     = gpu.V100
	A100     = gpu.A100
	RTXA4500 = gpu.RTXA4500
)

// Scheduler disciplines.
const (
	SchedFCFSBackfill  = sched.PolicyFCFSBackfill
	SchedFCFS          = sched.PolicyFCFS
	SchedSmallestFirst = sched.PolicySmallestFirst
)

// Clients.
type (
	// ClientConfig describes one split fine-tuning client.
	ClientConfig = client.Config
	// Client is a connected split fine-tuning client.
	Client = client.Client
	// StepResult reports one fine-tuning iteration.
	StepResult = client.StepResult
)

// Dial connects a client to a Menos server.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	return client.Dial(addr, cfg)
}

// Memory model (§2.3 accounting).
type (
	// Workload describes a client's fine-tuning configuration for the
	// analytic memory model.
	Workload = memmodel.Workload
	// Footprint is the M/A/O/I decomposition.
	Footprint = memmodel.Footprint
)

// Paper evaluation workloads.
var (
	PaperOPTWorkload   = memmodel.PaperOPTWorkload
	PaperLlamaWorkload = memmodel.PaperLlamaWorkload
)

// Persistent-memory estimators (Fig. 5).
var (
	VanillaPersistentBytes = memmodel.VanillaPersistentBytes
	MenosPersistentBytes   = memmodel.MenosPersistentBytes
)

// Simulation (performance plane).
type (
	// SimConfig configures a discrete-event split fine-tuning run.
	SimConfig = splitsim.Config
	// SimResult aggregates a simulation run.
	SimResult = splitsim.Result
	// SimMode selects Menos or the vanilla baseline.
	SimMode = splitsim.Mode
	// MemPolicy selects a Fig. 3 memory policy.
	MemPolicy = splitsim.MemPolicy
)

// Simulation modes and policies.
const (
	SimMenos   = splitsim.ModeMenos
	SimVanilla = splitsim.ModeVanilla

	PolicyOnDemand      = splitsim.PolicyOnDemand
	PolicyReleaseOnWait = splitsim.PolicyReleaseOnWait
	PolicyPreserve      = splitsim.PolicyPreserve
	PolicyPersistAll    = splitsim.PolicyPersistAll
)

// Simulate runs one performance-plane configuration.
func Simulate(cfg SimConfig) (*SimResult, error) { return splitsim.Run(cfg) }

// Experiments: paper artifacts.
type (
	// ExperimentOptions sizes experiment runs.
	ExperimentOptions = experiments.Options
	// Table is an aligned text table.
	Table = trace.Table
	// Figure is a set of series over one x axis.
	Figure = trace.Figure
)

// Experiment entry points, one per paper artifact.
var (
	MeasurementStudy = experiments.MeasurementStudy
	Fig3             = experiments.Fig3
	Fig5             = experiments.Fig5
	Fig6             = experiments.Fig6
	Fig7             = experiments.Fig7
	Fig8             = experiments.Fig8
	Fig9             = experiments.Fig9
	Fig10            = experiments.Fig10
	Table1           = experiments.Table1
	Table2           = experiments.Table2
	Table3           = experiments.Table3
	NewSweep         = experiments.NewSweep

	// Extension experiments beyond the paper's own figures.
	ExtensionQuantization         = experiments.ExtensionQuantization
	ExtensionMultiServer          = experiments.ExtensionMultiServer
	ExtensionHeterogeneousClients = experiments.ExtensionHeterogeneousClients
)

// Quantization (QLoRA-style, orthogonal to Menos per §5.2).
type (
	// QuantPrecision selects int8 or int4 base-weight storage.
	QuantPrecision = quant.Precision
)

// Quantization precisions.
const (
	QuantInt8 = quant.Int8
	QuantInt4 = quant.Int4
)

// QuantizeBlocks converts a model's transformer blocks to quantized
// storage (do this before attaching adapters). Returns the quantized
// byte footprint.
var QuantizeBlocks = quant.QuantizeBlocks

// Checkpointing: adapter parameters can be saved and restored without
// ever touching the shared base model.
var (
	SaveParams = checkpoint.Save
	LoadParams = checkpoint.Load
)
