// End-to-end tests of the public façade: everything a downstream user
// would touch, exercised through the menos package only (plus data for
// corpora).
package menos_test

import (
	"bytes"
	"strings"
	"testing"

	"menos"
	"menos/internal/costmodel"
	"menos/internal/data"
	"menos/internal/splitsim"
	"menos/internal/tensor"
)

func publicBatch(t *testing.T, cfg menos.ClientConfig, seed uint64) ([]int, []int) {
	t.Helper()
	r := tensor.NewRNG(seed)
	n := cfg.Batch * cfg.Seq
	ids := make([]int, n)
	targets := make([]int, n)
	for i := range ids {
		ids[i] = r.Intn(cfg.Model.Vocab)
		targets[i] = r.Intn(cfg.Model.Vocab)
	}
	return ids, targets
}

// TestPublicAPIEndToEnd walks the README's quick-start path: deploy,
// dial, train, checkpoint, generate, verify integrity.
func TestPublicAPIEndToEnd(t *testing.T) {
	dep, err := menos.NewDeployment(menos.DeploymentConfig{
		Model:      menos.OPTTiny(),
		WeightSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	addr, err := dep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cfg := menos.ClientConfig{
		ClientID:    "api-test",
		Model:       menos.OPTTiny(),
		WeightSeed:  42,
		Adapter:     menos.DefaultLoRA(),
		AdapterSeed: 7,
		LR:          8e-3,
		Batch:       2,
		Seq:         16,
	}
	c, err := menos.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids, targets := publicBatch(t, cfg, 1)
	first, err := c.Step(ids, targets)
	if err != nil {
		t.Fatal(err)
	}
	var last menos.StepResult
	for i := 0; i < 10; i++ {
		last, err = c.Step(ids, targets)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Loss >= first.Loss {
		t.Fatalf("no learning: %v -> %v", first.Loss, last.Loss)
	}

	var ckpt bytes.Buffer
	if err := c.SaveAdapter(&ckpt); err != nil {
		t.Fatal(err)
	}
	if ckpt.Len() == 0 {
		t.Fatal("empty checkpoint")
	}

	out, err := c.Generate(tensor.NewRNG(2), []int{1, 2, 3}, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 7 {
		t.Fatalf("generated %d tokens", len(out))
	}

	if err := dep.Store.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicSimulation exercises the performance plane via the façade.
func TestPublicSimulation(t *testing.T) {
	w := menos.PaperLlamaWorkload()
	if menos.MenosPersistentBytes(w, 4) >= menos.VanillaPersistentBytes(w, 4) {
		t.Fatal("sharing does not save")
	}
	fp := w.ClientFootprint()
	if fp.M <= 0 || fp.I <= 0 || fp.Total() <= fp.M {
		t.Fatalf("footprint = %+v", fp)
	}
	// Quantization shrinks the base.
	wq := w
	wq.BaseQuant = menos.QuantInt4
	if wq.ServerBaseBytes() >= w.ServerBaseBytes()/4 {
		t.Fatalf("int4 base %d not < fp32/4 %d", wq.ServerBaseBytes(), w.ServerBaseBytes()/4)
	}
}

// TestPublicExperimentsRender: the façade's experiment entry points
// produce renderable artifacts.
func TestPublicExperimentsRender(t *testing.T) {
	if out := menos.MeasurementStudy().Render(); !strings.Contains(out, "base model") {
		t.Fatalf("measurement study:\n%s", out)
	}
	figs := menos.Fig5()
	if len(figs) != 2 || !strings.Contains(figs[0].Render(), "menos") {
		t.Fatal("fig5 render")
	}
	if out := menos.ExtensionQuantization().Render(); !strings.Contains(out, "int4") {
		t.Fatalf("quant extension:\n%s", out)
	}
}

// TestPublicModelPresets: the preset catalog resolves and validates.
func TestPublicModelPresets(t *testing.T) {
	for _, name := range []string{"opt-1.3b", "llama2-7b", "opt-tiny", "llama-tiny"} {
		cfg, err := menos.ModelByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := menos.ModelByName("gpt-5"); err == nil {
		t.Fatal("unknown preset resolved")
	}
}

// TestPublicDataPath: corpora and tokenizers feed the client geometry.
func TestPublicDataPath(t *testing.T) {
	tok, err := data.NewCharTokenizer(data.Shakespeare(), menos.OPTTiny().Vocab)
	if err != nil {
		t.Fatal(err)
	}
	tokens, err := tok.Encode(data.Shakespeare())
	if err != nil {
		t.Fatal(err)
	}
	loader, err := data.NewLoader(tokens, 2, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := loader.Next()
	if len(ids) != 32 || len(targets) != 32 {
		t.Fatal("loader geometry")
	}
}

// TestFacadeSimulationModes exercises the remaining façade surface:
// simulation with explicit modes/policies/scheduler disciplines and
// GPU presets.
func TestFacadeSimulationModes(t *testing.T) {
	w := menos.PaperOPTWorkload()
	clients := splitsimClients(3, w)
	for _, cfg := range []menos.SimConfig{
		{Mode: menos.SimVanilla, Clients: clients, Iterations: 3},
		{Mode: menos.SimMenos, Policy: menos.PolicyReleaseOnWait, Clients: clients, Iterations: 3},
		{Mode: menos.SimMenos, SchedPol: menos.SchedSmallestFirst, Clients: clients, Iterations: 3},
		{Mode: menos.SimMenos, GPUSpec: menos.A100(), Clients: clients, Iterations: 3},
	} {
		r, err := menos.Simulate(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg.Mode, err)
		}
		if r.AvgIterationTime() <= 0 {
			t.Fatal("no simulated time")
		}
	}
	if menos.RTXA4500().MemoryBytes != 20<<30 {
		t.Fatal("gpu preset")
	}
	if menos.DefaultPrefix().Kind != menos.AdapterPrefix {
		t.Fatal("prefix spec")
	}
}

func splitsimClients(n int, w menos.Workload) []splitsim.ClientSpec {
	return splitsim.HomogeneousClients(n, w, costmodel.ClientGPUPerf())
}
